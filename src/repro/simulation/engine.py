"""The synchronous round simulator.

:class:`Simulator` executes the model of Section 2:

* rounds are numbered 1, 2, 3, ...;
* in round ``t`` the communication topology ``G_t`` consists of all reliable
  edges plus the unreliable edges chosen by the (oblivious) link scheduler;
* a listening node ``u`` receives a frame from ``v`` iff ``v`` is the *only*
  transmitting node among ``u``'s neighbors in ``G_t``; otherwise ``u``
  receives the null indicator (``None``) -- there is no collision detection;
* transmitting nodes receive nothing;
* the environment delivers inputs before transmissions and consumes outputs
  after receptions.

Reception resolution has several implementations that produce identical
results:

* the **kernel lanes** (default when the vector path engages; ``kernel=``)
  re-express the vectorized resolver as flat array kernels over buffers
  allocated once per Simulator: with numpy, candidate collection is one
  ``concatenate`` / ``repeat`` / ``bincount`` pipeline; without numpy, the
  vector algorithm runs over reusable candidate/sender buffers.  Cohort
  drivers that opt in additionally bulk-decode each seed cohort's shared
  decisions into array buffers and advance member streams with one bulk
  ``skip`` per flush, and a counters-only lane skips event materialization
  when the trace provably keeps nothing but counters.

* the **vectorized path** (default for oblivious schedulers) works on flat
  per-round structures over the graph's integer-indexed
  :class:`~repro.dualgraph.graph.TopologyIndex`.  Collision candidates are
  bulk-collected per transmitter neighborhood slice (one C-level ``extend``
  of the precomputed CSR row per transmitter), last-transmitter ids are
  bulk-filled with ``dict.fromkeys`` over the same slices, and the collision
  counters fall out of one C-level ``Counter`` pass over the candidate list.
  Reliable-edge contributions come entirely from the per-transmitter CSR
  slices precomputed once per topology; only unreliable edges consult the
  scheduler, via a per-round scheduled-edge-id *set*
  (:meth:`~repro.dualgraph.adversary.LinkScheduler.unreliable_edge_id_set_for_round`)
  intersected with each transmitter's precomputed incident-id set.  Those
  per-round deltas are shared across trials by the
  :class:`~repro.dualgraph.adversary.SchedulerDeltaCache`, so in sweeps the
  scheduler hashing is paid once per sweep point, not once per trial.
* the **point-query fast path** (``vector_path=False``; the PR-1/PR-2
  resolver) is transmitter-centric with explicit Python loops: each
  transmitter bumps a collision counter on its reliable neighbors via the
  CSR adjacency and point-queries the scheduler
  (:meth:`~repro.dualgraph.adversary.LinkScheduler.unreliable_edge_included`)
  for exactly the unreliable edges incident to transmitters.  It never
  materializes a round's full delta, which makes it the better choice for
  one-shot runs of hash-driven schedulers with very sparse transmission
  patterns, and it doubles as a reference implementation in the vectorized
  path's regression tests.
* the **generic path** asks the scheduler for the round's full topology edge
  set and scans it.  It is kept for adaptive schedulers (whose edge choice
  depends on the round's transmitters) and for schedulers that override
  :meth:`~repro.dualgraph.adversary.LinkScheduler.resolve_topology`, and it
  doubles as the reference implementation in determinism regression tests.

Independently of reception resolution, *process stepping* has two
implementations that also produce identical results:

* **batched stepping** (default): processes exposing a batch group key
  (:meth:`~repro.simulation.process.Process.batch_group_key`) are stepped by
  shared cohort drivers -- one ``transmit_round`` / ``receive_round`` call
  per driver per round instead of two method calls per process -- which lets
  homogeneous populations share per-round decisions and skip dormant members
  entirely.  Ungrouped processes in the same run are stepped per-process.
* **per-process stepping** steps every process individually and doubles as
  the reference implementation in the batching regression tests.

In both stepping modes the ``on_round_start`` / ``on_round_end`` hook loops
only visit processes whose class actually overrides those hooks (detected
once at construction); for hook-free populations the loops vanish.
"""

from __future__ import annotations

import time
import warnings
from collections import Counter
from typing import Any, Dict, Hashable, List, Mapping, Optional

from repro.dualgraph.adversary import LinkScheduler, NoUnreliableScheduler
from repro.dualgraph.graph import DualGraph
from repro.simulation.environment import Environment, NullEnvironment
from repro.simulation.process import Process
from repro.simulation.trace import ExecutionTrace, TraceMode

Vertex = Hashable

#: Process-wide memo of per-round scheduled-edge bitmasks, keyed by
#: ``(scheduler delta-cache key, round)``.  The delta cache key's contract
#: (equal keys => identical deltas for every round, across instances and
#: processes) is exactly the license needed to share the masks the same way
#: the :class:`~repro.dualgraph.adversary.SchedulerDeltaCache` shares the id
#: sets.  Bounded FIFO: inserts past the cap evict the oldest entry.
_SCHED_MASK_CACHE: Dict[Any, int] = {}
_SCHED_MASK_CACHE_MAXSIZE = 8192


class Simulator:
    """Drive a set of processes over a dual graph for a number of rounds.

    Parameters
    ----------
    graph:
        The dual graph network ``(G, G')``.
    processes:
        A mapping from every vertex of the graph to its process automaton.
    scheduler:
        The oblivious link scheduler; defaults to never including unreliable
        edges (topology always equals ``G``).
    environment:
        The input/output environment; defaults to a :class:`NullEnvironment`.
    record_frames:
        **Deprecated** legacy knob (a ``DeprecationWarning`` is emitted when
        it is passed explicitly): ``False`` mapped to
        ``trace_mode=TraceMode.EVENTS`` and ``True`` to ``TraceMode.FULL``.
        Use ``trace_mode=`` instead.
    trace_mode:
        Explicit :class:`TraceMode` (overrides ``record_frames``; default
        ``TraceMode.FULL``).
    fast_path:
        Use the indexed transmitter-centric reception resolvers when the
        scheduler allows it.  Disable to force the generic edge-set resolver
        (used by regression tests and as the "seed engine" benchmark
        baseline); all resolvers produce identical traces.
    vector_path:
        Within the fast path, resolve receptions with the vectorized
        flat-array resolver (see module docstring); requires the scheduler's
        per-round delta set, which the :class:`SchedulerDeltaCache` shares
        across trials.  Disable to fall back to the PR-1/PR-2 point-query
        resolver (which never materializes full deltas); both produce
        identical traces.  Ignored when the fast path itself is off.
    batch_path:
        Step batchable processes through shared cohort drivers (see module
        docstring).  Disable to force per-process stepping for every process
        (used by regression tests and as the "PR-1 fast engine" benchmark
        baseline); both produce identical traces.
    kernel:
        The array-kernel lanes riding on the vector path: ``"auto"``
        (default) engages them with numpy when importable and the pure-python
        ``array`` kernels otherwise; ``"numpy"`` requests numpy but falls
        back to python when absent; ``"python"`` forces the python kernels;
        ``"off"`` disables both kernel lanes (the configuration every
        pre-kernel lane is benchmarked and regression-tested under).  When
        engaged, reception resolution uses flat array kernels over reusable
        round buffers, batch drivers that opt in (``enable_kernel``) step
        seed cohorts through bulk-decoded decision buffers, and -- when the
        trace mode is ``COUNTERS`` and no consumer can observe event objects
        -- rounds run through a counters-only lane that skips event
        materialization entirely.  Every lane produces byte-identical traces
        (identical aggregate counters in ``COUNTERS`` mode).
    profile:
        Collect per-section wall-clock totals in :attr:`perf_stats`
        (``inputs`` / ``transmit`` / ``resolve`` / ``deliver`` / ``outputs``).
        Off by default; profiling adds a few timer calls per round.
    """

    def __init__(
        self,
        graph: DualGraph,
        processes: Mapping[Vertex, Process],
        scheduler: Optional[LinkScheduler] = None,
        environment: Optional[Environment] = None,
        record_frames: Optional[bool] = None,
        trace_mode: Optional[TraceMode] = None,
        fast_path: bool = True,
        vector_path: bool = True,
        batch_path: bool = True,
        kernel: str = "auto",
        profile: bool = False,
    ) -> None:
        missing = graph.vertices - set(processes)
        if missing:
            raise ValueError(f"no process supplied for vertices: {sorted(map(repr, missing))}")
        extra = set(processes) - graph.vertices
        if extra:
            raise ValueError(f"processes supplied for unknown vertices: {sorted(map(repr, extra))}")
        self._graph = graph
        self._processes: Dict[Vertex, Process] = dict(processes)
        self._scheduler = scheduler if scheduler is not None else NoUnreliableScheduler(graph)
        self._environment = environment if environment is not None else NullEnvironment()
        if record_frames is not None:
            warnings.warn(
                "Simulator(record_frames=...) is deprecated; pass "
                "trace_mode=TraceMode.FULL (record_frames=True) or "
                "trace_mode=TraceMode.EVENTS (record_frames=False) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if trace_mode is None:
                trace_mode = TraceMode.FULL if record_frames else TraceMode.EVENTS
        self._trace = ExecutionTrace(mode=trace_mode)
        self._current_round = 0
        self._started = False
        self.perf_stats: Dict[str, float] = {}
        self._profile = bool(profile)

        self._fast = bool(fast_path) and self._supports_fast_path()
        self._vector = self._fast and bool(vector_path)

        # Kernel backend resolution.  The kernel lanes ride on the vector
        # path's flat structures and the scheduler delta interface, so they
        # engage only when the vector path does; "auto" prefers numpy and
        # falls back to the pure-python array kernels, exactly like an
        # explicit "numpy" request on an interpreter without numpy.
        if kernel not in ("auto", "python", "numpy", "off"):
            raise ValueError(
                f"kernel must be one of 'auto', 'python', 'numpy', 'off', got {kernel!r}"
            )
        self._np = None
        backend: Optional[str] = None
        if kernel != "off" and self._vector:
            if kernel == "python":
                backend = "python"
            else:
                try:
                    import numpy

                    self._np = numpy
                    backend = "numpy"
                except ImportError:
                    backend = "python"
        self._kernel_backend = backend

        # Round-scoped reusable buffers (kernel lanes only; the vector path
        # keeps its per-round allocations as the pinned reference): allocated
        # once per Simulator, reset at the start of each use.
        self._kr_masks: List[int] = []
        self._kr_receptions: Dict[Vertex, Any] = {}
        self._kr_transmissions: Dict[Vertex, Any] = {}
        self._kr_outputs: List[Any] = []

        if self._fast:
            self._bind_index()

        # Batch stepping: group processes that expose a cohort key under one
        # driver each; everything else is stepped per-process.  Output drain
        # order must match the per-process engine, so keep the full process
        # list in registration order regardless of grouping.
        self._ordered_processes: List[Process] = list(self._processes.values())
        self._batch_drivers: List[Any] = []
        self._ungrouped: Dict[Vertex, Process] = self._processes
        if batch_path:
            self._build_batch_groups()

        # Kernel stepping: drivers that opt in (duck-typed enable_kernel)
        # defer member stream advancement and stats to bulk flushes; the
        # engine settles them at every run() boundary.
        self._kernel_drivers: List[Any] = []
        if backend is not None:
            for driver in self._batch_drivers:
                enable = getattr(driver, "enable_kernel", None)
                if enable is not None and enable():
                    self._kernel_drivers.append(driver)

        # Hook-override detection: the on_round_start/on_round_end loops are
        # pure overhead for populations that never override them (two full
        # scans per round); visit only actual overriders.
        self._round_start_hooks: List[Process] = [
            p
            for p in self._ordered_processes
            if type(p).on_round_start is not Process.on_round_start
        ]
        self._round_end_hooks: List[Process] = [
            p
            for p in self._ordered_processes
            if type(p).on_round_end is not Process.on_round_end
        ]

        # Counters-only kernel lane: engages when it is provable that no
        # consumer will ever read event objects -- the trace keeps counters
        # only, every process is stepped by a kernel driver that can count
        # receptions without materializing RecvOutputs, there are no round
        # hooks, and the environment uses the base-class observation methods
        # (a subclass hook could inspect recv events the lane never builds).
        env_type = type(self._environment)
        self._counters_lane = (
            self._trace.mode is TraceMode.COUNTERS
            and backend is not None
            and bool(self._batch_drivers)
            and not self._ungrouped
            and len(self._kernel_drivers) == len(self._batch_drivers)
            and all(
                hasattr(driver, "receive_round_counters")
                for driver in self._batch_drivers
            )
            and not self._round_start_hooks
            and not self._round_end_hooks
            and env_type.observe_outputs is Environment.observe_outputs
            and env_type._on_recv is Environment._on_recv
        )
        # Surface *why* the top lane did not engage (None when it did): the
        # silent part of lane selection -- e.g. a traffic environment whose
        # ``_on_recv`` hook quietly drops the run off the counters lane --
        # becomes a recorded, assertable reason instead of a perf mystery.
        self._lane_fallback = self._counters_fallback_reason(env_type, backend)

    def _counters_fallback_reason(
        self, env_type: type, backend: Optional[str]
    ) -> Optional[str]:
        """The first condition that kept the counters-only lane off.

        Mirrors the eligibility conjunction above, in order, so the reported
        reason is the same check an engineer would hit stepping through it.
        """
        if self._counters_lane:
            return None
        if self._trace.mode is not TraceMode.COUNTERS:
            return (
                f"trace mode is '{self._trace.mode.value}' "
                "(the counters lane needs 'counters')"
            )
        if backend is None:
            return (
                "no kernel backend engaged (kernel lanes need fast_path + "
                "vector_path and kernel != 'off')"
            )
        if not self._batch_drivers:
            return "no batch group drivers (processes expose no cohort key)"
        if self._ungrouped:
            return (
                f"{len(self._ungrouped)} process(es) stepped outside "
                "batch groups"
            )
        if len(self._kernel_drivers) != len(self._batch_drivers):
            return "a batch driver declined kernel stepping"
        if not all(
            hasattr(driver, "receive_round_counters")
            for driver in self._batch_drivers
        ):
            return (
                "a batch driver cannot count receptions without "
                "materializing events"
            )
        if self._round_start_hooks or self._round_end_hooks:
            return (
                "process round hooks (on_round_start/on_round_end) need "
                "per-round event stepping"
            )
        if env_type.observe_outputs is not Environment.observe_outputs:
            return f"environment {env_type.__name__} overrides observe_outputs"
        return f"environment {env_type.__name__} overrides _on_recv"

    def _build_batch_groups(self) -> None:
        groups: Dict[Any, Any] = {}
        ungrouped: Dict[Vertex, Process] = {}
        for vertex, process in self._processes.items():
            driver = None
            key = process.batch_group_key()
            if key is not None:
                driver = groups.get(key)
                if driver is None:
                    driver = process.make_batch_driver()
                    if driver is not None:
                        groups[key] = driver
            if driver is None:
                ungrouped[vertex] = process
            else:
                driver.add_member(process)
        if groups:
            self._batch_drivers = list(groups.values())
            self._ungrouped = ungrouped

    def _supports_fast_path(self) -> bool:
        scheduler = self._scheduler
        return (
            not scheduler.is_adaptive
            and scheduler.graph is self._graph
            # A scheduler that customizes resolve_topology (beyond the
            # adaptive subclasses) may depend on the transmitter set, which
            # the delta interface cannot express.
            and type(scheduler).resolve_topology is LinkScheduler.resolve_topology
        )

    def _bind_index(self) -> None:
        index = self._graph.topology_index()
        self._index = index
        self._index_version = self._graph.topology_version
        self._idx_of = index.index_of
        self._vertex_of = index.vertices
        self._g_neighbors = index.g_neighbors
        self._u_adjacency = index.unreliable_adjacency
        n = index.n
        self._tx_flags = bytearray(n)
        self._hits = [0] * n
        self._last_sender = [0] * n
        # Vector-path views: per-vertex incident unreliable edge ids (for set
        # intersection with the round's scheduled delta) and eid -> neighbor
        # maps, both precomputed once per topology by the index.
        self._u_incident = index.unreliable_incident_ids
        self._u_neighbor_of = index.unreliable_neighbor_by_eid
        self._has_unreliable = index.num_unreliable_edges > 0
        # Kernel-resolver views (built only when a kernel backend is
        # engaged): the python kernel resolver runs the whole collision rule
        # as big-integer bitmask algebra, so it needs per-vertex reliable
        # neighborhoods and incident unreliable edge ids as bit masks, plus
        # the single-bit table for assembling per-round masks.  A round's
        # working set is then a few hundred bytes of ints instead of the
        # ~64KB frozenset hash tables the per-round delta sets occupy, which
        # is what makes the mask ops cache-resident.
        if self._kernel_backend is not None:
            bit = self._v_bit = [1 << i for i in range(n)]
            self._g_vmasks = [
                sum(bit[j] for j in row) for row in index.g_neighbors
            ]
            self._u_mask_bytes = max(1, (index.num_unreliable_edges + 7) >> 3)
            self._u_inc_masks = [
                sum(1 << eid for eid in eids) for eids in self._u_incident
            ]
            # The scheduled-edge bitmask is memoized process-wide under the
            # scheduler's delta cache key (same sharing license as the delta
            # sets themselves); None disables the mask path.
            self._sched_mask_key = (
                self._scheduler.delta_cache_key() if self._has_unreliable else None
            )
        # Numpy-kernel views: per-vertex neighbor rows as index arrays (for
        # one concatenate per round instead of per-transmitter extends), row
        # lengths (for the matching repeat of sender ids), and a sender
        # scratch buffer.  Rebuilt with the rest of the index on topology
        # changes so the arrays stay in sync with the vertex numbering.
        np = self._np
        if np is not None:
            self._np_rows = [
                np.array(row, dtype=np.intp) for row in index.g_neighbors
            ]
            self._np_row_lens = np.array(
                [len(row) for row in index.g_neighbors], dtype=np.intp
            )
            self._np_sender = np.zeros(n, dtype=np.intp)
            self._np_n = n

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DualGraph:
        return self._graph

    @property
    def trace(self) -> ExecutionTrace:
        return self._trace

    @property
    def environment(self) -> Environment:
        return self._environment

    @property
    def scheduler(self) -> LinkScheduler:
        return self._scheduler

    @property
    def current_round(self) -> int:
        """The last completed round (0 before the first round runs)."""
        return self._current_round

    @property
    def uses_fast_path(self) -> bool:
        """Whether receptions are resolved via the indexed fast path."""
        return self._fast

    @property
    def uses_vector_path(self) -> bool:
        """Whether receptions are resolved via the vectorized flat-array path."""
        return self._vector

    @property
    def uses_batch_stepping(self) -> bool:
        """Whether any processes are stepped through batch group drivers."""
        return bool(self._batch_drivers)

    @property
    def uses_kernel(self) -> bool:
        """Whether the array-kernel lanes (resolver and, when batched, cohort
        stepping) are engaged."""
        return self._kernel_backend is not None

    @property
    def kernel_backend(self) -> Optional[str]:
        """``"numpy"`` or ``"python"`` when the kernel is engaged, else None."""
        return self._kernel_backend

    @property
    def uses_counters_lane(self) -> bool:
        """Whether rounds run through the counters-only kernel lane."""
        return self._counters_lane

    @property
    def lane(self) -> str:
        """The engine lane rounds actually run through, most-optimized first:
        ``counters-kernel-<backend>``, ``kernel-<backend>``, ``vector``,
        ``fast``, or ``reference``."""
        if self._counters_lane:
            return f"counters-kernel-{self._kernel_backend}"
        if self._kernel_backend is not None:
            return f"kernel-{self._kernel_backend}"
        if self._vector:
            return "vector"
        if self._fast:
            return "fast"
        return "reference"

    @property
    def lane_fallback(self) -> Optional[str]:
        """Why the counters-only lane did not engage (``None`` when it did)."""
        return self._lane_fallback

    @property
    def batch_drivers(self) -> List[Any]:
        """The registered batch group drivers (empty when none apply)."""
        return list(self._batch_drivers)

    def process_at(self, vertex: Vertex) -> Process:
        """The process automaton assigned to ``vertex``."""
        return self._processes[vertex]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, rounds: int) -> ExecutionTrace:
        """Run ``rounds`` additional rounds and return the trace."""
        if rounds < 0:
            raise ValueError("cannot run a negative number of rounds")
        if not self._started:
            for process in self._processes.values():
                process.on_start()
            self._started = True
        if self._counters_lane:
            step = (
                self._run_one_round_kernel_counters_profiled
                if self._profile
                else self._run_one_round_kernel_counters
            )
        elif self._batch_drivers:
            step = (
                self._run_one_round_batched_profiled
                if self._profile
                else self._run_one_round_batched
            )
        else:
            step = self._run_one_round_profiled if self._profile else self._run_one_round
        for _ in range(rounds):
            self._current_round += 1
            step(self._current_round)
        # Settle any deferred kernel-driver state (member streams, stats) so
        # callers observe exactly the per-process state at every run boundary;
        # drivers rebuild their cohorts lazily if the run resumes mid-body.
        for driver in self._kernel_drivers:
            driver.flush_kernel_state()
        return self._trace

    def run_until(self, predicate, max_rounds: int, check_every: int = 1) -> ExecutionTrace:
        """Run until ``predicate(trace)`` is true or ``max_rounds`` have elapsed.

        The predicate is evaluated every ``check_every`` rounds (and once more
        at the end).  Useful for "run until the flood completes" experiments.
        """
        if max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        while self._current_round < max_rounds:
            step = min(check_every, max_rounds - self._current_round)
            self.run(step)
            if predicate(self._trace):
                break
        return self._trace

    # ------------------------------------------------------------------
    # one round of the Section 2 execution model
    # ------------------------------------------------------------------
    def _run_one_round(self, round_number: int) -> None:
        trace = self._trace
        trace.note_round(round_number)
        processes = self._processes

        for process in self._round_start_hooks:
            process.on_round_start(round_number)

        # 1. environment inputs
        inputs = self._environment.inputs_for_round(round_number)
        for vertex, vertex_inputs in inputs.items():
            process = processes[vertex]
            for inp in vertex_inputs:
                process.on_input(round_number, inp)
                trace.record_event(
                    _as_bcast_event(vertex, inp, round_number)
                )

        # 2. transmission decisions
        transmissions: Dict[Vertex, Any] = {}
        for vertex, process in processes.items():
            frame = process.transmit(round_number)
            if frame is not None:
                transmissions[vertex] = frame
        trace.record_transmissions(round_number, transmissions)

        # 3. topology for this round and reception resolution
        receptions = self._resolve_receptions(round_number, transmissions)
        trace.record_receptions(round_number, receptions)
        get_reception = receptions.get
        for vertex, process in processes.items():
            process.on_receive(round_number, get_reception(vertex))

        # 4. outputs
        for process in self._round_end_hooks:
            process.on_round_end(round_number)
        round_outputs = []
        for process in self._ordered_processes:
            if process._pending_outputs:
                for event in process.drain_outputs():
                    trace.record_event(event)
                    round_outputs.append(event)
        self._environment.observe_outputs(round_number, round_outputs)

    def _run_one_round_batched(self, round_number: int) -> None:
        """`_run_one_round` with grouped processes stepped by their drivers.

        Grouped processes get no per-round ``transmit`` / ``on_receive``
        dispatch at all; their drivers add transmissions to, and consume
        receptions from, the same round-level dicts the per-process loops
        use, which is what keeps traces byte-identical across the stepping
        modes (events are drained in registration order either way).
        """
        trace = self._trace
        trace.note_round(round_number)

        for process in self._round_start_hooks:
            process.on_round_start(round_number)

        # 1. environment inputs
        inputs = self._environment.inputs_for_round(round_number)
        if inputs:
            processes = self._processes
            for vertex, vertex_inputs in inputs.items():
                process = processes[vertex]
                for inp in vertex_inputs:
                    process.on_input(round_number, inp)
                    trace.record_event(_as_bcast_event(vertex, inp, round_number))

        # 2. transmission decisions
        transmissions: Dict[Vertex, Any] = {}
        for driver in self._batch_drivers:
            driver.transmit_round(round_number, transmissions)
        for vertex, process in self._ungrouped.items():
            frame = process.transmit(round_number)
            if frame is not None:
                transmissions[vertex] = frame
        trace.record_transmissions(round_number, transmissions)

        # 3. topology for this round and reception resolution
        receptions = self._resolve_receptions(round_number, transmissions)
        trace.record_receptions(round_number, receptions)
        for driver in self._batch_drivers:
            driver.receive_round(round_number, receptions)
        if self._ungrouped:
            get_reception = receptions.get
            for vertex, process in self._ungrouped.items():
                process.on_receive(round_number, get_reception(vertex))

        # 4. outputs
        for process in self._round_end_hooks:
            process.on_round_end(round_number)
        round_outputs = []
        for process in self._ordered_processes:
            if process._pending_outputs:
                for event in process.drain_outputs():
                    trace.record_event(event)
                    round_outputs.append(event)
        self._environment.observe_outputs(round_number, round_outputs)

    def _run_one_round_profiled(self, round_number: int) -> None:
        """`_run_one_round` with per-section wall-clock accounting.

        Kept as a separate copy so the unprofiled hot loop carries no timer
        overhead at all.
        """
        perf = self.perf_stats
        clock = time.perf_counter
        trace = self._trace
        trace.note_round(round_number)
        processes = self._processes

        t0 = clock()
        for process in self._round_start_hooks:
            process.on_round_start(round_number)
        inputs = self._environment.inputs_for_round(round_number)
        for vertex, vertex_inputs in inputs.items():
            process = processes[vertex]
            for inp in vertex_inputs:
                process.on_input(round_number, inp)
                trace.record_event(_as_bcast_event(vertex, inp, round_number))
        t1 = clock()
        perf["inputs"] = perf.get("inputs", 0.0) + (t1 - t0)

        transmissions: Dict[Vertex, Any] = {}
        for vertex, process in processes.items():
            frame = process.transmit(round_number)
            if frame is not None:
                transmissions[vertex] = frame
        trace.record_transmissions(round_number, transmissions)
        t2 = clock()
        perf["transmit"] = perf.get("transmit", 0.0) + (t2 - t1)

        receptions = self._resolve_receptions(round_number, transmissions)
        trace.record_receptions(round_number, receptions)
        t3 = clock()
        perf["resolve"] = perf.get("resolve", 0.0) + (t3 - t2)

        get_reception = receptions.get
        for vertex, process in processes.items():
            process.on_receive(round_number, get_reception(vertex))
        t4 = clock()
        perf["deliver"] = perf.get("deliver", 0.0) + (t4 - t3)

        for process in self._round_end_hooks:
            process.on_round_end(round_number)
        round_outputs = []
        for process in self._ordered_processes:
            if process._pending_outputs:
                for event in process.drain_outputs():
                    trace.record_event(event)
                    round_outputs.append(event)
        self._environment.observe_outputs(round_number, round_outputs)
        t5 = clock()
        perf["outputs"] = perf.get("outputs", 0.0) + (t5 - t4)

    def _run_one_round_batched_profiled(self, round_number: int) -> None:
        """`_run_one_round_batched` with per-section wall-clock accounting."""
        perf = self.perf_stats
        clock = time.perf_counter
        trace = self._trace
        trace.note_round(round_number)

        t0 = clock()
        for process in self._round_start_hooks:
            process.on_round_start(round_number)
        inputs = self._environment.inputs_for_round(round_number)
        if inputs:
            processes = self._processes
            for vertex, vertex_inputs in inputs.items():
                process = processes[vertex]
                for inp in vertex_inputs:
                    process.on_input(round_number, inp)
                    trace.record_event(_as_bcast_event(vertex, inp, round_number))
        t1 = clock()
        perf["inputs"] = perf.get("inputs", 0.0) + (t1 - t0)

        transmissions: Dict[Vertex, Any] = {}
        for driver in self._batch_drivers:
            driver.transmit_round(round_number, transmissions)
        for vertex, process in self._ungrouped.items():
            frame = process.transmit(round_number)
            if frame is not None:
                transmissions[vertex] = frame
        trace.record_transmissions(round_number, transmissions)
        t2 = clock()
        perf["transmit"] = perf.get("transmit", 0.0) + (t2 - t1)

        receptions = self._resolve_receptions(round_number, transmissions)
        trace.record_receptions(round_number, receptions)
        t3 = clock()
        perf["resolve"] = perf.get("resolve", 0.0) + (t3 - t2)

        for driver in self._batch_drivers:
            driver.receive_round(round_number, receptions)
        if self._ungrouped:
            get_reception = receptions.get
            for vertex, process in self._ungrouped.items():
                process.on_receive(round_number, get_reception(vertex))
        t4 = clock()
        perf["deliver"] = perf.get("deliver", 0.0) + (t4 - t3)

        for process in self._round_end_hooks:
            process.on_round_end(round_number)
        round_outputs = []
        for process in self._ordered_processes:
            if process._pending_outputs:
                for event in process.drain_outputs():
                    trace.record_event(event)
                    round_outputs.append(event)
        self._environment.observe_outputs(round_number, round_outputs)
        t5 = clock()
        perf["outputs"] = perf.get("outputs", 0.0) + (t5 - t4)

    def _run_one_round_kernel_counters(self, round_number: int) -> None:
        """One round of the counters-only kernel lane.

        `_run_one_round_batched` specialized for the configuration the
        constructor proved safe: every process is driven by a kernel batch
        driver, the trace keeps only counters, and the environment observes
        through the base-class methods.  Receptions are therefore counted by
        the drivers (no ``RecvOutput`` objects, no per-process drain scan --
        drivers hand back the round's materialized outputs, which are acks
        only) and the transmission/output containers are the Simulator's
        round-scoped reusable buffers.  Aggregate counters match the other
        lanes exactly; event *lists* are empty in ``COUNTERS`` mode in every
        lane, so nothing observable is lost.
        """
        trace = self._trace
        trace.note_round(round_number)
        environment = self._environment

        inputs = environment.inputs_for_round(round_number)
        if inputs:
            processes = self._processes
            for vertex, vertex_inputs in inputs.items():
                process = processes[vertex]
                for inp in vertex_inputs:
                    process.on_input(round_number, inp)
                    trace.record_event(_as_bcast_event(vertex, inp, round_number))

        transmissions = self._kr_transmissions
        transmissions.clear()
        for driver in self._batch_drivers:
            driver.transmit_round(round_number, transmissions)
        trace.record_transmissions(round_number, transmissions)

        receptions = self._resolve_receptions(round_number, transmissions)
        if receptions:
            trace.count_receptions(len(receptions))

        emitted = self._kr_outputs
        del emitted[:]
        recvs = 0
        for driver in self._batch_drivers:
            recvs += driver.receive_round_counters(round_number, receptions, emitted)
        if recvs:
            trace.count_recv_outputs(recvs)
        if emitted:
            for event in emitted:
                trace.record_event(event)
        environment.observe_outputs(round_number, emitted)

    def _run_one_round_kernel_counters_profiled(self, round_number: int) -> None:
        """`_run_one_round_kernel_counters` with per-section accounting."""
        perf = self.perf_stats
        clock = time.perf_counter
        trace = self._trace
        trace.note_round(round_number)
        environment = self._environment

        t0 = clock()
        inputs = environment.inputs_for_round(round_number)
        if inputs:
            processes = self._processes
            for vertex, vertex_inputs in inputs.items():
                process = processes[vertex]
                for inp in vertex_inputs:
                    process.on_input(round_number, inp)
                    trace.record_event(_as_bcast_event(vertex, inp, round_number))
        t1 = clock()
        perf["inputs"] = perf.get("inputs", 0.0) + (t1 - t0)

        transmissions = self._kr_transmissions
        transmissions.clear()
        for driver in self._batch_drivers:
            driver.transmit_round(round_number, transmissions)
        trace.record_transmissions(round_number, transmissions)
        t2 = clock()
        perf["transmit"] = perf.get("transmit", 0.0) + (t2 - t1)

        receptions = self._resolve_receptions(round_number, transmissions)
        if receptions:
            trace.count_receptions(len(receptions))
        t3 = clock()
        perf["resolve"] = perf.get("resolve", 0.0) + (t3 - t2)

        emitted = self._kr_outputs
        del emitted[:]
        recvs = 0
        for driver in self._batch_drivers:
            recvs += driver.receive_round_counters(round_number, receptions, emitted)
        if recvs:
            trace.count_recv_outputs(recvs)
        t4 = clock()
        perf["deliver"] = perf.get("deliver", 0.0) + (t4 - t3)

        if emitted:
            for event in emitted:
                trace.record_event(event)
        environment.observe_outputs(round_number, emitted)
        t5 = clock()
        perf["outputs"] = perf.get("outputs", 0.0) + (t5 - t4)

    # ------------------------------------------------------------------
    # reception resolution
    # ------------------------------------------------------------------
    def _resolve_receptions(
        self, round_number: int, transmissions: Dict[Vertex, Any]
    ) -> Dict[Vertex, Any]:
        """Apply the radio collision rule for one round.

        Returns only the vertices that actually received a frame; silent or
        collided listeners are simply absent (callers use ``.get``).
        """
        if not transmissions:
            return {}
        if self._fast:
            if self._index_version != self._graph.topology_version:
                # The graph was mutated mid-run (dynamic-topology experiment):
                # refresh the index view so edge ids stay in sync with the
                # schedulers, which key their own caches on the same version.
                self._bind_index()
            if self._vector:
                backend = self._kernel_backend
                if backend is None:
                    return self._resolve_receptions_vector(round_number, transmissions)
                if backend == "numpy":
                    return self._resolve_receptions_kernel_numpy(
                        round_number, transmissions
                    )
                return self._resolve_receptions_kernel_python(
                    round_number, transmissions
                )
            return self._resolve_receptions_fast(round_number, transmissions)
        return self._resolve_receptions_generic(round_number, transmissions)

    def _resolve_receptions_kernel_python(
        self, round_number: int, transmissions: Dict[Vertex, Any]
    ) -> Dict[Vertex, Any]:
        """The collision rule as big-integer bitmask algebra.

        Computes exactly the receptions of :meth:`_resolve_receptions_vector`
        with every per-candidate container replaced by arbitrary-precision
        ints: each transmitter's reach this round is one mask over vertex
        indices (precomputed reliable neighborhood ORed with the decoded
        scheduled-unreliable bits), candidates reached twice are
        ``collided |= seen & mask``, and the winners are one expression,
        ``seen & ~(collided | transmitters)``.  A single transmitter never
        collides with itself (reliable rows have no duplicates, scheduled
        unreliable edges are disjoint from G's edges, and there are no
        self-loops), so the two-touch collision threshold is exact.  The
        masks live in a few hundred bytes regardless of degree, where the
        per-round frozenset delta views occupy ~64KB hash tables each -- the
        bitmask pass stays cache-resident where set intersection thrashes.

        Winner attribution needs no sender map: a winner was reached by
        exactly one transmitter, so intersecting each transmitter's mask with
        the winner mask partitions the winners.  The receptions dict's
        *insertion order* differs from the vector path (ascending index per
        transmitter rather than first-touch), which is observationally
        irrelevant for the same reasons as the numpy resolver: frame maps
        compare as dicts and events are drained in process-registration
        order.  The returned dict is reused across rounds -- every
        trace-recording path copies what it keeps.
        """
        idx_of = self._idx_of
        vertex_of = self._vertex_of

        tx_indices = [idx_of[vertex] for vertex in transmissions]
        if len(tx_indices) == 1:
            # Lone transmitter: every candidate wins (one transmitter's
            # candidates are duplicate-free, see above).
            i = tx_indices[0]
            frame = transmissions[vertex_of[i]]
            receptions = self._kr_receptions
            receptions.clear()
            for j in self._g_neighbors[i]:
                receptions[vertex_of[j]] = frame
            if self._has_unreliable:
                scheduled = self._scheduler.unreliable_edge_id_set_for_round(
                    round_number
                )
                if scheduled:
                    hit = scheduled & self._u_incident[i]
                    if hit:
                        nbs = self._u_neighbor_of[i]
                        for eid in hit:
                            receptions[vertex_of[nbs[eid]]] = frame
            return receptions

        if self._has_unreliable:
            if self._sched_mask_key is None:
                # No cross-instance delta identity (exotic scheduler): the
                # mask decode would rebuild per round, so the pinned vector
                # resolver is the better kernel here.
                return self._resolve_receptions_vector(round_number, transmissions)
            scheduled_mask = self._scheduled_edge_mask(round_number)
        else:
            scheduled_mask = 0

        bit = self._v_bit
        gmasks = self._g_vmasks
        seen = 0
        collided = 0
        txmask = 0
        masks = self._kr_masks
        del masks[:]
        if scheduled_mask:
            inc_masks = self._u_inc_masks
            neighbor_of = self._u_neighbor_of
            for i in tx_indices:
                m = gmasks[i]
                u_hit = scheduled_mask & inc_masks[i]
                if u_hit:
                    nbs = neighbor_of[i]
                    while u_hit:
                        low = u_hit & -u_hit
                        u_hit ^= low
                        m |= bit[nbs[low.bit_length() - 1]]
                collided |= seen & m
                seen |= m
                txmask |= bit[i]
                masks.append(m)
        else:
            for i in tx_indices:
                m = gmasks[i]
                collided |= seen & m
                seen |= m
                txmask |= bit[i]
                masks.append(m)

        receptions = self._kr_receptions
        receptions.clear()
        win = seen & ~(collided | txmask)
        if win:
            for i, m in zip(tx_indices, masks):
                wm = m & win
                if wm:
                    win ^= wm
                    frame = transmissions[vertex_of[i]]
                    while wm:
                        low = wm & -wm
                        wm ^= low
                        receptions[vertex_of[low.bit_length() - 1]] = frame
                    if not win:
                        break
        return receptions

    def _scheduled_edge_mask(self, round_number: int) -> int:
        """The round's scheduled unreliable edges as one edge-id bitmask.

        Decoded once per ``(delta identity, round)`` process-wide (see
        :data:`_SCHED_MASK_CACHE`); bit ``eid`` is set iff edge ``eid`` is
        scheduled this round, so ``mask & incident_mask[i]`` is transmitter
        ``i``'s scheduled unreliable edges in one C-level AND.
        """
        key = (self._sched_mask_key, round_number)
        mask = _SCHED_MASK_CACHE.get(key)
        if mask is None:
            buf = bytearray(self._u_mask_bytes)
            for eid in self._scheduler.unreliable_edge_ids_for_round(round_number):
                buf[eid >> 3] |= 1 << (eid & 7)
            mask = int.from_bytes(buf, "little")
            if len(_SCHED_MASK_CACHE) >= _SCHED_MASK_CACHE_MAXSIZE:
                del _SCHED_MASK_CACHE[next(iter(_SCHED_MASK_CACHE))]
            _SCHED_MASK_CACHE[key] = mask
        return mask

    #: Transmitter count below which the numpy backend routes a round through
    #: the pure-python kernel resolver instead: with only a handful of
    #: transmitters the candidate arrays hold a few dozen elements and the
    #: fixed per-call cost of the numpy ops (array construction, concatenate,
    #: bincount) exceeds the whole python pass.  Both resolvers are
    #: byte-identical, so the routing is invisible in traces.
    _NUMPY_MIN_TX = 16

    def _resolve_receptions_kernel_numpy(
        self, round_number: int, transmissions: Dict[Vertex, Any]
    ) -> Dict[Vertex, Any]:
        """The collision rule as flat numpy kernels.

        Candidate receivers are one ``concatenate`` over the transmitters'
        precomputed neighbor-index arrays, matching sender ids one ``repeat``
        of the transmitter ids by row length, collision counts one
        ``bincount``, and the winners one boolean reduction -- no per-edge
        Python work for reliable edges.  Unreliable edges keep the vector
        path's per-transmitter frozenset intersection with the round's
        scheduled delta (the sets are tiny and already precomputed; crossing
        them into numpy per round costs more than it saves).

        The receptions *dict insertion order* differs from the vector path
        (ascending vertex index rather than first-touch), which is
        observationally irrelevant: frame maps compare as dicts, events are
        drained in process-registration order, and each member handles at
        most one reception per round.  The sender scratch buffer carries
        stale values between rounds by design -- it is only ever read at
        indices whose collision count is exactly 1 this round, and those were
        all just written.  Like the python kernel, the returned dict is
        reused across rounds.
        """
        if len(transmissions) < self._NUMPY_MIN_TX:
            return self._resolve_receptions_kernel_python(round_number, transmissions)
        np = self._np
        idx_of = self._idx_of
        vertex_of = self._vertex_of
        rows = self._np_rows

        tx_indices = [idx_of[vertex] for vertex in transmissions]
        tx_arr = np.array(tx_indices, dtype=np.intp)
        cand = np.concatenate([rows[i] for i in tx_indices])
        senders = np.repeat(tx_arr, self._np_row_lens[tx_arr])

        if self._has_unreliable:
            scheduled = self._scheduler.unreliable_edge_id_set_for_round(round_number)
            if scheduled:
                incident = self._u_incident
                neighbor_of = self._u_neighbor_of
                js_list: List[int] = []
                ks_list: List[int] = []
                for i in tx_indices:
                    hit = scheduled & incident[i]
                    if hit:
                        nbs = neighbor_of[i]
                        for eid in hit:
                            js_list.append(nbs[eid])
                            ks_list.append(i)
                if js_list:
                    cand = np.concatenate(
                        [cand, np.array(js_list, dtype=np.intp)]
                    )
                    senders = np.concatenate(
                        [senders, np.array(ks_list, dtype=np.intp)]
                    )

        receptions = self._kr_receptions
        receptions.clear()
        if cand.size:
            counts = np.bincount(cand, minlength=self._np_n)
            sender_buf = self._np_sender
            sender_buf[cand] = senders
            ok = np.equal(counts, 1)
            ok[tx_arr] = False
            singles = np.flatnonzero(ok)
            if singles.size:
                single_senders = sender_buf[singles].tolist()
                for j, s in zip(singles.tolist(), single_senders):
                    receptions[vertex_of[j]] = transmissions[vertex_of[s]]
        return receptions

    def _resolve_receptions_vector(
        self, round_number: int, transmissions: Dict[Vertex, Any]
    ) -> Dict[Vertex, Any]:
        """The vectorized collision-rule resolver (see module docstring).

        Semantically identical to :meth:`_resolve_receptions_fast`, but the
        per-(transmitter, neighbor) Python work is replaced by bulk C-level
        operations over flat precomputed structures:

        * candidate receivers are collected by extending one list with each
          transmitter's precomputed CSR neighbor slice (reliable edges never
          consult the scheduler);
        * last-transmitter ids are bulk-filled per slice with
          ``dict.fromkeys(slice, transmitter)`` -- unambiguous wherever the
          collision count ends up exactly 1;
        * scheduled unreliable edges come from one frozenset intersection per
          transmitter between the round's delta set and the transmitter's
          precomputed incident-edge-id set;
        * collision counters are one ``Counter`` pass over the candidates.

        First-touch candidate order matches the point-query resolver exactly
        (reliable slices in transmitter order, then scheduled unreliable
        edges in ascending edge id per transmitter), so the receptions dict
        is built in the same insertion order and traces stay byte-identical.
        """
        idx_of = self._idx_of
        vertex_of = self._vertex_of
        rows = self._g_neighbors
        tx = self._tx_flags
        fromkeys = dict.fromkeys

        tx_indices = [idx_of[vertex] for vertex in transmissions]
        for i in tx_indices:
            tx[i] = 1

        touched: List[int] = []
        extend = touched.extend
        sender: Dict[int, int] = {}
        fill = sender.update
        for i in tx_indices:
            row = rows[i]
            if row:
                extend(row)
                fill(fromkeys(row, i))

        if self._has_unreliable:
            scheduled = self._scheduler.unreliable_edge_id_set_for_round(round_number)
            if scheduled:
                incident = self._u_incident
                neighbor_of = self._u_neighbor_of
                for i in tx_indices:
                    hit = scheduled & incident[i]
                    if hit:
                        nbs = neighbor_of[i]
                        js = [nbs[eid] for eid in sorted(hit)]
                        extend(js)
                        fill(fromkeys(js, i))

        receptions: Dict[Vertex, Any] = {}
        if touched:
            for j, count in Counter(touched).items():
                if count == 1 and not tx[j]:
                    receptions[vertex_of[j]] = transmissions[vertex_of[sender[j]]]
        for i in tx_indices:
            tx[i] = 0
        return receptions

    def _resolve_receptions_fast(
        self, round_number: int, transmissions: Dict[Vertex, Any]
    ) -> Dict[Vertex, Any]:
        idx_of = self._idx_of
        vertex_of = self._vertex_of
        g_neighbors = self._g_neighbors
        tx = self._tx_flags
        hits = self._hits
        last_sender = self._last_sender
        touched: List[int] = []

        tx_indices = [idx_of[vertex] for vertex in transmissions]
        for i in tx_indices:
            tx[i] = 1

        # Reliable edges: every transmitter bumps all its G-neighbors.
        for i in tx_indices:
            for j in g_neighbors[i]:
                if not hits[j]:
                    touched.append(j)
                hits[j] += 1
                last_sender[j] = i

        # Unreliable edges: only those incident to a transmitter can carry or
        # spoil a frame, so ask the scheduler about exactly those.  Each
        # (transmitter, incident edge) pair is visited once; an edge between
        # two transmitters is correctly counted at both endpoints.
        u_adjacency = self._u_adjacency
        included = self._scheduler.unreliable_edge_included
        for i in tx_indices:
            for j, eid in u_adjacency[i]:
                if included(eid, round_number):
                    if not hits[j]:
                        touched.append(j)
                    hits[j] += 1
                    last_sender[j] = i

        receptions: Dict[Vertex, Any] = {}
        for j in touched:
            if hits[j] == 1 and not tx[j]:
                receptions[vertex_of[j]] = transmissions[vertex_of[last_sender[j]]]
            hits[j] = 0
        for i in tx_indices:
            tx[i] = 0
        return receptions

    def _resolve_receptions_generic(
        self, round_number: int, transmissions: Dict[Vertex, Any]
    ) -> Dict[Vertex, Any]:
        topology_edges = self._scheduler.resolve_topology(
            round_number, frozenset(transmissions)
        )
        # Build adjacency restricted to edges incident to a transmitter -- the
        # only edges that can possibly carry a frame this round.
        neighbors_of: Dict[Vertex, list] = {}
        for edge in topology_edges:
            a, b = tuple(edge)
            if a in transmissions:
                neighbors_of.setdefault(b, []).append(a)
            if b in transmissions:
                neighbors_of.setdefault(a, []).append(b)

        receptions: Dict[Vertex, Any] = {}
        for vertex, senders in neighbors_of.items():
            if vertex in transmissions:
                # A radio cannot hear while it transmits.
                continue
            if len(senders) == 1:
                receptions[vertex] = transmissions[senders[0]]
        return receptions


def _as_bcast_event(vertex: Vertex, inp: Any, round_number: int):
    """Wrap an environment input as a trace event.

    Environments submit :class:`repro.core.messages.Message` objects; the
    trace records them as :class:`repro.core.events.BcastInput`.  Inputs of
    other types (used by custom environments or upper layers) are recorded
    as-is if they are already events.
    """
    from repro.core.events import BcastInput
    from repro.core.messages import Message

    if isinstance(inp, BcastInput):
        return inp
    if isinstance(inp, Message):
        return BcastInput(vertex=vertex, message=inp, round_number=round_number)
    raise TypeError(
        f"environment inputs must be Message or BcastInput instances, got {type(inp).__name__}"
    )
