"""The synchronous round simulator.

:class:`Simulator` executes the model of Section 2:

* rounds are numbered 1, 2, 3, ...;
* in round ``t`` the communication topology ``G_t`` consists of all reliable
  edges plus the unreliable edges chosen by the (oblivious) link scheduler;
* a listening node ``u`` receives a frame from ``v`` iff ``v`` is the *only*
  transmitting node among ``u``'s neighbors in ``G_t``; otherwise ``u``
  receives the null indicator (``None``) -- there is no collision detection;
* transmitting nodes receive nothing;
* the environment delivers inputs before transmissions and consumes outputs
  after receptions.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Hashable, Iterable, Mapping, Optional

from repro.dualgraph.adversary import LinkScheduler, NoUnreliableScheduler
from repro.dualgraph.graph import DualGraph
from repro.simulation.environment import Environment, NullEnvironment
from repro.simulation.process import Process
from repro.simulation.trace import ExecutionTrace

Vertex = Hashable


class Simulator:
    """Drive a set of processes over a dual graph for a number of rounds.

    Parameters
    ----------
    graph:
        The dual graph network ``(G, G')``.
    processes:
        A mapping from every vertex of the graph to its process automaton.
    scheduler:
        The oblivious link scheduler; defaults to never including unreliable
        edges (topology always equals ``G``).
    environment:
        The input/output environment; defaults to a :class:`NullEnvironment`.
    record_frames:
        Forwarded to :class:`ExecutionTrace`; disable for very long runs where
        only input/output events are needed.
    """

    def __init__(
        self,
        graph: DualGraph,
        processes: Mapping[Vertex, Process],
        scheduler: Optional[LinkScheduler] = None,
        environment: Optional[Environment] = None,
        record_frames: bool = True,
    ) -> None:
        missing = graph.vertices - set(processes)
        if missing:
            raise ValueError(f"no process supplied for vertices: {sorted(map(repr, missing))}")
        extra = set(processes) - graph.vertices
        if extra:
            raise ValueError(f"processes supplied for unknown vertices: {sorted(map(repr, extra))}")
        self._graph = graph
        self._processes: Dict[Vertex, Process] = dict(processes)
        self._scheduler = scheduler if scheduler is not None else NoUnreliableScheduler(graph)
        self._environment = environment if environment is not None else NullEnvironment()
        self._trace = ExecutionTrace(record_frames=record_frames)
        self._current_round = 0
        self._started = False

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DualGraph:
        return self._graph

    @property
    def trace(self) -> ExecutionTrace:
        return self._trace

    @property
    def environment(self) -> Environment:
        return self._environment

    @property
    def scheduler(self) -> LinkScheduler:
        return self._scheduler

    @property
    def current_round(self) -> int:
        """The last completed round (0 before the first round runs)."""
        return self._current_round

    def process_at(self, vertex: Vertex) -> Process:
        """The process automaton assigned to ``vertex``."""
        return self._processes[vertex]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, rounds: int) -> ExecutionTrace:
        """Run ``rounds`` additional rounds and return the trace."""
        if rounds < 0:
            raise ValueError("cannot run a negative number of rounds")
        if not self._started:
            for process in self._processes.values():
                process.on_start()
            self._started = True
        for _ in range(rounds):
            self._current_round += 1
            self._run_one_round(self._current_round)
        return self._trace

    def run_until(self, predicate, max_rounds: int, check_every: int = 1) -> ExecutionTrace:
        """Run until ``predicate(trace)`` is true or ``max_rounds`` have elapsed.

        The predicate is evaluated every ``check_every`` rounds (and once more
        at the end).  Useful for "run until the flood completes" experiments.
        """
        if max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        while self._current_round < max_rounds:
            step = min(check_every, max_rounds - self._current_round)
            self.run(step)
            if predicate(self._trace):
                break
        return self._trace

    # ------------------------------------------------------------------
    # one round of the Section 2 execution model
    # ------------------------------------------------------------------
    def _run_one_round(self, round_number: int) -> None:
        trace = self._trace
        trace.note_round(round_number)
        processes = self._processes

        for process in processes.values():
            process.on_round_start(round_number)

        # 1. environment inputs
        inputs = self._environment.inputs_for_round(round_number)
        for vertex, vertex_inputs in inputs.items():
            process = processes[vertex]
            for inp in vertex_inputs:
                process.on_input(round_number, inp)
                trace.record_event(
                    _as_bcast_event(vertex, inp, round_number)
                )

        # 2. transmission decisions
        transmissions: Dict[Vertex, Any] = {}
        for vertex, process in processes.items():
            frame = process.transmit(round_number)
            if frame is not None:
                transmissions[vertex] = frame
        trace.record_transmissions(round_number, transmissions)

        # 3. topology for this round and reception resolution
        receptions = self._resolve_receptions(round_number, transmissions)
        trace.record_receptions(round_number, receptions)
        for vertex, process in processes.items():
            process.on_receive(round_number, receptions.get(vertex))

        # 4. outputs
        round_outputs = []
        for vertex, process in processes.items():
            process.on_round_end(round_number)
            for event in process.drain_outputs():
                trace.record_event(event)
                round_outputs.append(event)
        self._environment.observe_outputs(round_number, round_outputs)

    def _resolve_receptions(
        self, round_number: int, transmissions: Dict[Vertex, Any]
    ) -> Dict[Vertex, Optional[Any]]:
        """Apply the radio collision rule for one round."""
        receptions: Dict[Vertex, Optional[Any]] = {}
        if not transmissions:
            return receptions

        topology_edges = self._scheduler.resolve_topology(
            round_number, frozenset(transmissions)
        )
        # Build adjacency restricted to edges incident to a transmitter -- the
        # only edges that can possibly carry a frame this round.
        neighbors_of: Dict[Vertex, list] = {}
        for edge in topology_edges:
            a, b = tuple(edge)
            if a in transmissions:
                neighbors_of.setdefault(b, []).append(a)
            if b in transmissions:
                neighbors_of.setdefault(a, []).append(b)

        for vertex in self._graph.vertices:
            if vertex in transmissions:
                # A radio cannot hear while it transmits.
                continue
            transmitting_neighbors = neighbors_of.get(vertex, [])
            if len(transmitting_neighbors) == 1:
                sender = transmitting_neighbors[0]
                receptions[vertex] = transmissions[sender]
            else:
                receptions[vertex] = None
        return receptions


def _as_bcast_event(vertex: Vertex, inp: Any, round_number: int):
    """Wrap an environment input as a trace event.

    Environments submit :class:`repro.core.messages.Message` objects; the
    trace records them as :class:`repro.core.events.BcastInput`.  Inputs of
    other types (used by custom environments or upper layers) are recorded
    as-is if they are already events.
    """
    from repro.core.events import BcastInput
    from repro.core.messages import Message

    if isinstance(inp, BcastInput):
        return inp
    if isinstance(inp, Message):
        return BcastInput(vertex=vertex, message=inp, round_number=round_number)
    raise TypeError(
        f"environment inputs must be Message or BcastInput instances, got {type(inp).__name__}"
    )
