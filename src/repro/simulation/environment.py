"""Deterministic environments (Section 4.1).

The environment is the entity that provides ``bcast`` inputs and consumes
``ack`` / ``recv`` outputs.  The local broadcast problem restricts the
environments considered:

1. every message submitted is unique, and
2. after submitting ``bcast(m)_u`` the environment must wait for the matching
   ``ack(m)_u`` before submitting another message at ``u``.

All environments in this module maintain those two restrictions internally
(they queue or drop attempted submissions while a node is busy), and they are
deterministic: given the sequence of observed outputs, the inputs they
generate are a pure function -- matching the paper's modeling assumption.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Sequence

from repro.core.events import AckOutput, Event, RecvOutput
from repro.core.messages import Message, fresh_counter

Vertex = Hashable


class Environment(ABC):
    """Base class for deterministic local broadcast environments."""

    def __init__(self) -> None:
        self._busy: Dict[Vertex, Message] = {}
        self._counter = fresh_counter()
        self._submitted: List[Message] = []

    # ------------------------------------------------------------------
    # simulator-facing interface
    # ------------------------------------------------------------------
    def inputs_for_round(self, round_number: int) -> Dict[Vertex, List[Any]]:
        """The bcast inputs to deliver at the start of ``round_number``.

        Subclasses implement :meth:`_wanted_submissions`; this wrapper filters
        out submissions that would violate the one-outstanding-message rule
        and stamps fresh messages.
        """
        inputs: Dict[Vertex, List[Any]] = {}
        for vertex, payload in self._wanted_submissions(round_number):
            if vertex in self._busy:
                continue
            message = Message(
                origin=vertex,
                sequence=self._counter.next_for(vertex),
                payload=payload,
            )
            self._busy[vertex] = message
            self._submitted.append(message)
            inputs.setdefault(vertex, []).append(message)
        return inputs

    def observe_outputs(self, round_number: int, outputs: Sequence[Event]) -> None:
        """Called at the end of each round with every process output."""
        for event in outputs:
            if isinstance(event, AckOutput):
                busy = self._busy.get(event.vertex)
                if busy is not None and busy.message_id == event.message.message_id:
                    del self._busy[event.vertex]
                self._on_ack(round_number, event)
            elif isinstance(event, RecvOutput):
                self._on_recv(round_number, event)

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _wanted_submissions(self, round_number: int) -> Iterable[tuple]:
        """Yield ``(vertex, payload)`` pairs the environment wants to submit."""

    def _on_ack(self, round_number: int, event: AckOutput) -> None:
        """Hook: an acknowledgment was observed (busy bookkeeping already done)."""

    def _on_recv(self, round_number: int, event: RecvOutput) -> None:
        """Hook: a recv output was observed."""

    # ------------------------------------------------------------------
    # inspection helpers used by tests and metrics
    # ------------------------------------------------------------------
    @property
    def submitted_messages(self) -> List[Message]:
        """Every message ever handed to a node, in submission order."""
        return list(self._submitted)

    def is_busy(self, vertex: Vertex) -> bool:
        """True while ``vertex`` has an outstanding (unacknowledged) message."""
        return vertex in self._busy

    def outstanding_message(self, vertex: Vertex) -> Optional[Message]:
        return self._busy.get(vertex)


class NullEnvironment(Environment):
    """An environment that never submits anything (pure listening runs)."""

    def _wanted_submissions(self, round_number: int) -> Iterable[tuple]:
        return ()


class SingleShotEnvironment(Environment):
    """Each designated sender gets exactly one message, at a chosen round.

    Parameters
    ----------
    senders:
        The vertices that receive a ``bcast`` input.
    start_round:
        The round at which all submissions happen (default 1).
    payload_prefix:
        Payloads are ``f"{payload_prefix}{vertex}"`` for traceability.
    """

    def __init__(self, senders: Iterable[Vertex], start_round: int = 1,
                 payload_prefix: str = "msg-") -> None:
        super().__init__()
        self._senders = list(senders)
        self._start_round = int(start_round)
        self._prefix = payload_prefix
        self._done = False

    def _wanted_submissions(self, round_number: int) -> Iterable[tuple]:
        if self._done or round_number < self._start_round:
            return ()
        self._done = True
        return [(v, f"{self._prefix}{v}") for v in self._senders]


class SaturatingEnvironment(Environment):
    """Senders always have a message: a new one is submitted right after each ack.

    This workload realizes the "active throughout the phase" premise of the
    progress property: as long as the run lasts, every designated sender is
    actively broadcasting in every round (except the single round gap between
    an ack and the next submission, which we avoid by resubmitting in the same
    observation cycle -- the new bcast lands at the start of the next round,
    and the acked message remains active through its ack round, so coverage is
    continuous).
    """

    def __init__(self, senders: Iterable[Vertex], start_round: int = 1) -> None:
        super().__init__()
        self._senders = list(senders)
        self._start_round = int(start_round)

    def _wanted_submissions(self, round_number: int) -> Iterable[tuple]:
        if round_number < self._start_round:
            return ()
        busy = self._busy
        if len(busy) == len(self._senders):
            # Steady state: every sender has an outstanding message (only
            # senders ever submit, so the busy map holds nothing else).
            return ()
        return [
            (vertex, f"sat-{vertex}-r{round_number}")
            for vertex in self._senders
            if vertex not in busy
        ]


class ScriptedEnvironment(Environment):
    """Submissions given explicitly as ``{round: {vertex: payload}}``.

    If a scripted submission arrives while the vertex is still busy it is
    queued and submitted at the first later round where the vertex is free,
    preserving the well-formedness restriction while keeping determinism.
    """

    def __init__(self, script: Mapping[int, Mapping[Vertex, Any]]) -> None:
        super().__init__()
        self._script: Dict[int, Dict[Vertex, Any]] = {
            int(rnd): dict(entries) for rnd, entries in script.items()
        }
        self._queue: List[tuple] = []

    def _wanted_submissions(self, round_number: int) -> Iterable[tuple]:
        due = list(self._queue)
        self._queue = []
        for vertex, payload in sorted(
            self._script.get(round_number, {}).items(), key=lambda kv: repr(kv[0])
        ):
            due.append((vertex, payload))
        ready = []
        for vertex, payload in due:
            if self.is_busy(vertex):
                self._queue.append((vertex, payload))
            else:
                ready.append((vertex, payload))
        return ready

    @property
    def pending(self) -> List[tuple]:
        """Scripted submissions still waiting for their vertex to become free."""
        return list(self._queue)


class BurstyEnvironment(Environment):
    """Each sender attempts a new submission every ``period`` rounds.

    Attempts made while the sender is busy are dropped (not queued), modeling
    a periodic sensing application that reports the freshest sample only.
    """

    def __init__(self, senders: Iterable[Vertex], period: int = 50,
                 start_round: int = 1) -> None:
        super().__init__()
        if period < 1:
            raise ValueError("period must be at least 1 round")
        self._senders = list(senders)
        self._period = int(period)
        self._start_round = int(start_round)

    def _wanted_submissions(self, round_number: int) -> Iterable[tuple]:
        if round_number < self._start_round:
            return ()
        if (round_number - self._start_round) % self._period != 0:
            return ()
        return [
            (v, f"burst-{v}-r{round_number}")
            for v in self._senders
            if not self.is_busy(v)
        ]
