"""Traffic-aware link schedulers: slot frames shaped by forecast queue depth.

TASA (Traffic Aware Scheduling Algorithm) builds a slot frame for a
convergecast tree: links expected to carry more aggregated traffic get served
first, and links that would interfere are never given the same slot.  This
module ports that idea into the dual-graph adversary model, where the link
scheduler's per-round decision is *which unreliable edges exist*:

* a routing tree toward the configured sink(s) is built by multi-source BFS
  over the reliable graph;
* each vertex's a-priori arrival-rate forecast
  (:meth:`~repro.traffic.arrivals.ArrivalProcess.expected_rate`) is
  aggregated up the tree into subtree loads;
* every unreliable edge is assigned a slot in a frame, highest forecast
  first, with edges sharing an endpoint kept in different slots
  (first-fit coloring -- the TASA conflict-avoidance rule);
* round ``t`` includes exactly the edges of slot ``(t - 1) mod frame``.

Compared to an iid inclusion coin, the frame admits far fewer unreliable
edges per round and never two incident to the same vertex, so receivers see
much less collision interference -- which is what drives delivery latency
down under load.  The schedule is a pure function of ``(graph, forecast,
frame)``: the scheduler stays oblivious, exposes the edge-id delta interface
with lazily memoized per-slot masks (the :class:`PeriodicScheduler` pattern),
and participates in the cross-trial delta cache and kernel lanes unchanged.

Two prioritization variants exist:

* ``"tasa"`` -- subtree-aggregated load over the routing tree;
* ``"longest_queue"`` -- each edge ranked by the larger *local* forecast of
  its endpoints (no tree aggregation), the longest-queue-first baseline.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.dualgraph.adversary import LinkScheduler

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

VARIANTS = ("tasa", "longest_queue")


def build_routing_tree(graph, sinks: Sequence[Vertex]) -> Dict[Vertex, Optional[Vertex]]:
    """Parent map of a multi-source BFS forest over reliable edges.

    Every vertex points toward its nearest sink (ties broken by sorted visit
    order, so the tree is deterministic); sinks and vertices unreachable from
    any sink are their own roots (parent ``None``).
    """
    if not sinks:
        raise ValueError("routing tree needs at least one sink")
    try:
        ordered_sinks = sorted(set(sinks))
    except TypeError:
        ordered_sinks = sorted(set(sinks), key=repr)
    parents: Dict[Vertex, Optional[Vertex]] = {s: None for s in ordered_sinks}
    frontier = list(ordered_sinks)
    while frontier:
        next_frontier: List[Vertex] = []
        for vertex in frontier:
            try:
                neighbors = sorted(graph.reliable_neighbors(vertex))
            except TypeError:
                neighbors = sorted(graph.reliable_neighbors(vertex), key=repr)
            for neighbor in neighbors:
                if neighbor not in parents:
                    parents[neighbor] = vertex
                    next_frontier.append(neighbor)
        frontier = next_frontier
    for vertex in graph.vertices:
        parents.setdefault(vertex, None)
    return parents


def subtree_loads(
    parents: Mapping[Vertex, Optional[Vertex]], rates: Mapping[Vertex, float]
) -> Dict[Vertex, float]:
    """Per-vertex forecast aggregated over the routing subtree rooted there.

    ``load[v]`` is ``v``'s own rate plus the rates of every descendant --
    the traffic the subtree must push through ``v`` on its way to the sink.
    """
    loads: Dict[Vertex, float] = {v: 0.0 for v in parents}
    for vertex in parents:
        weight = float(rates.get(vertex, 0.0))
        cursor: Optional[Vertex] = vertex
        while cursor is not None:
            loads[cursor] += weight
            cursor = parents[cursor]
    return loads


class TrafficAwareScheduler(LinkScheduler):
    """Slot-frame inclusion of unreliable edges, prioritized by forecast load.

    Parameters
    ----------
    graph:
        The dual graph whose unreliable edges are scheduled.
    rates:
        Per-vertex expected arrivals per round (the a-priori forecast).
        Vertices absent from the mapping forecast zero.
    sinks:
        Routing-tree roots for the ``"tasa"`` variant.  Defaults to the
        lowest vertex, matching a single-collector convergecast.
    frame:
        Slot-frame length in rounds.  Defaults to the number of slots the
        conflict-free assignment needs (the maximum "unreliable degree"
        governs it); a larger frame lowers the duty cycle further, a smaller
        one forces conflicting edges to share slots (first-fit by least
        conflict, deterministic).
    variant:
        ``"tasa"`` (subtree-aggregated priority) or ``"longest_queue"``
        (local-forecast priority, no tree).
    """

    def __init__(
        self,
        graph,
        rates: Optional[Mapping[Vertex, float]] = None,
        sinks: Sequence[Vertex] = (),
        frame: Optional[int] = None,
        variant: str = "tasa",
    ) -> None:
        super().__init__(graph)
        if variant not in VARIANTS:
            raise ValueError(f"variant must be one of {VARIANTS}, got {variant!r}")
        if frame is not None and frame < 1:
            raise ValueError("frame must be at least 1 round")
        self._variant = variant
        if rates is None:
            # Traffic-agnostic fallback: a unit forecast everywhere still
            # yields a valid conflict-free frame (pure interference control).
            rates = {v: 1.0 for v in graph.vertices}
        if not sinks:
            try:
                sinks = [min(graph.vertices)]
            except TypeError:
                sinks = [min(graph.vertices, key=repr)]
        self._sinks: Tuple[Vertex, ...] = tuple(sinks)
        if variant == "tasa":
            parents = build_routing_tree(graph, self._sinks)
            priority = subtree_loads(parents, rates)
        else:
            priority = {v: float(rates.get(v, 0.0)) for v in graph.vertices}
        self._slots, self._frame = self._assign_slots(graph, priority, frame)
        self._slot_edges: List[FrozenSet[Edge]] = [
            frozenset(e for e, s in self._slots.items() if s == slot)
            for slot in range(self._frame)
        ]
        # Canonical text of the slot table: the delta-cache signature hashes
        # it, so two instances share cached deltas iff their schedules agree.
        table = ";".join(
            f"{edge!r}:{slot}" for edge, slot in sorted(self._slots.items(), key=repr)
        )
        self._table_digest = hashlib.sha256(
            f"{variant}|{self._frame}|{table}".encode()
        ).hexdigest()[:16]
        self._slot_masks_version: Optional[int] = None
        self._slot_masks: Dict[int, Tuple[int, ...]] = {}

    @staticmethod
    def _assign_slots(
        graph, priority: Mapping[Vertex, float], frame: Optional[int]
    ) -> Tuple[Dict[Edge, int], int]:
        def edge_priority(edge: Edge) -> float:
            u, v = edge
            return max(priority.get(u, 0.0), priority.get(v, 0.0))

        try:
            edges = sorted(graph.unreliable_edges)
        except TypeError:
            edges = sorted(graph.unreliable_edges, key=repr)
        edges.sort(key=lambda e: (-edge_priority(e), repr(e)))
        used_at: Dict[Vertex, set] = {}
        slots: Dict[Edge, int] = {}
        highest = 0
        for edge in edges:
            u, v = edge
            taken = used_at.setdefault(u, set()) | used_at.setdefault(v, set())
            slot = 0
            while slot in taken and (frame is None or slot < frame - 1):
                slot += 1
            if frame is not None and slot >= frame:
                slot = frame - 1
            slots[edge] = slot
            used_at[u].add(slot)
            used_at[v].add(slot)
            highest = max(highest, slot)
        resolved = frame if frame is not None else (highest + 1 if slots else 1)
        return slots, resolved

    @property
    def frame(self) -> int:
        return self._frame

    @property
    def variant(self) -> str:
        return self._variant

    def slot_of(self, edge: Edge) -> Optional[int]:
        """The frame slot assigned to one unreliable edge (None if unknown)."""
        return self._slots.get(edge)

    def unreliable_edges_for_round(self, round_number: int) -> FrozenSet[Edge]:
        return self._slot_edges[(round_number - 1) % self._frame]

    def _compute_unreliable_edge_ids(self, round_number: int, index) -> Tuple[int, ...]:
        # At most `frame` distinct masks exist; compute each lazily and reuse
        # it for the rest of the run (the PeriodicScheduler pattern).
        version = self._graph.topology_version
        if version != self._slot_masks_version:
            self._slot_masks = {}
            self._slot_masks_version = version
        slot = (round_number - 1) % self._frame
        mask = self._slot_masks.get(slot)
        if mask is None:
            mask = tuple(
                eid
                for eid, edge in enumerate(index.unreliable_edge_list)
                if self._slots.get(edge) == slot
            )
            self._slot_masks[slot] = mask
        return mask

    def _delta_cache_signature(self) -> Tuple[Hashable, ...]:
        return ("traffic_aware", self._variant, self._frame, self._table_digest)

    def describe(self) -> str:
        return (
            f"TrafficAwareScheduler(variant={self._variant}, frame={self._frame}, "
            f"sinks={list(self._sinks)})"
        )
