"""Queue-backed workloads and traffic-aware scheduling (``docs/traffic.md``).

The traffic subsystem turns the stateless environments of
:mod:`repro.simulation.environment` into load-driven ones:

* :mod:`repro.traffic.arrivals` -- deterministic, seed-derived arrival
  processes (poisson-like, periodic, bursty, convergecast);
* :mod:`repro.traffic.environment` -- :class:`QueuedEnvironment`, per-node
  FIFO backlogs with head-of-line submission and per-message timestamps;
* :mod:`repro.traffic.schedulers` -- the TASA-style
  :class:`TrafficAwareScheduler` family (slot frames prioritized by
  forecast subtree load over a routing tree).

Declaratively, scenarios opt in through the ``traffic`` node of
:class:`~repro.scenarios.spec.ScenarioSpec` (a
:class:`~repro.scenarios.spec.TrafficSpec`); the registered components are
the ``queued`` environment and the ``tasa`` / ``longest_queue`` schedulers,
and the ``queue`` metric reports backlog percentiles, waiting times and
delivery latency with pooled Wilson intervals.
"""

from repro.traffic.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    BurstyArrivals,
    ConvergecastArrivals,
    PeriodicArrivals,
    PoissonArrivals,
    build_arrival_process,
    derive_stream_seed,
)
from repro.traffic.environment import QueuedEnvironment
from repro.traffic.schedulers import (
    TrafficAwareScheduler,
    build_routing_tree,
    subtree_loads,
)

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "BurstyArrivals",
    "ConvergecastArrivals",
    "PeriodicArrivals",
    "PoissonArrivals",
    "QueuedEnvironment",
    "TrafficAwareScheduler",
    "build_arrival_process",
    "build_routing_tree",
    "derive_stream_seed",
    "subtree_loads",
]
