"""Deterministic, seed-derived arrival processes for queue-backed workloads.

An :class:`ArrivalProcess` decides, per round, how many new messages each
source vertex wants to enqueue.  Randomized processes draw their bits from
:class:`~repro.core.seedbits.SeedBitStream` -- one independent stream per
source vertex, seeded by a SHA-256 derivation of ``(seed, vertex)`` -- so the
whole arrival sequence is a pure function of the spec-level seed, identical
across engine lanes, worker processes, and platforms.

Two views exist on every process:

* :meth:`ArrivalProcess.arrivals_for_round` -- the realized arrivals.  Rounds
  must be consumed **in order** (the environment does; streams advance one
  fixed-width draw per source per round), which is what keeps the realization
  deterministic regardless of which engine lane runs the round loop.
* :meth:`ArrivalProcess.expected_rate` -- the *a-priori* per-round arrival
  rate forecast for one vertex.  This consumes no stream bits; traffic-aware
  schedulers (:mod:`repro.traffic.schedulers`) use it to size their slot
  frames before the run starts, mirroring how TASA derives a slot schedule
  from declared traffic demands rather than observed queues.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Any, Dict, Hashable, List, Mapping, Sequence, Tuple

from repro.core.seedbits import SeedBitStream

Vertex = Hashable

#: Width of one Bernoulli draw: 16 bits compared against ``rate * 2**16``.
_RATE_BITS = 16
_RATE_SCALE = 1 << _RATE_BITS
#: Initial seed bits per per-vertex stream; exhaustion extends via the
#: stream's deterministic SHA-256 extension blocks.
_STREAM_KAPPA = 256


def derive_stream_seed(seed: int, vertex: Vertex, salt: str = "arrival") -> int:
    """A per-vertex stream seed from the process seed, via SHA-256.

    Hashing ``repr(vertex)`` keeps the derivation independent of Python's
    randomized object hashing, so streams agree across processes.  The full
    256-bit digest is returned so it fills a κ=256 :class:`SeedBitStream`
    completely -- a narrower value would leave the stream's leading bits all
    zero and bias every early Bernoulli draw toward firing.
    """
    digest = hashlib.sha256(
        f"traffic-{salt}|{int(seed)}|{vertex!r}".encode()
    ).digest()
    return int.from_bytes(digest, "big")


def _threshold(rate: float) -> int:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"arrival rate must be in [0, 1], got {rate!r}")
    return int(round(rate * _RATE_SCALE))


class ArrivalProcess(ABC):
    """Base class: per-round arrival counts for an ordered set of sources."""

    def __init__(self, sources: Sequence[Vertex], sinks: Sequence[Vertex], seed: int) -> None:
        self._sources: Tuple[Vertex, ...] = tuple(sources)
        self._sinks: Tuple[Vertex, ...] = tuple(sinks)
        self._seed = int(seed)
        self._next_round = 1

    @property
    def sources(self) -> Tuple[Vertex, ...]:
        """The vertices that may generate traffic, in submission order."""
        return self._sources

    @property
    def sinks(self) -> Tuple[Vertex, ...]:
        """Designated collection points (used by convergecast and schedulers)."""
        return self._sinks

    @property
    def seed(self) -> int:
        return self._seed

    def arrivals_for_round(self, round_number: int) -> List[Tuple[Vertex, int]]:
        """Realized ``(vertex, count)`` arrivals for one round.

        Rounds must be consumed sequentially starting at 1 -- each call
        advances the per-vertex bit streams by exactly one draw, which is the
        discipline that makes the realization a pure function of the seed.
        """
        if round_number != self._next_round:
            raise ValueError(
                f"arrival rounds must be consumed in order: expected round "
                f"{self._next_round}, got {round_number}"
            )
        self._next_round += 1
        return self._arrivals(round_number)

    @abstractmethod
    def _arrivals(self, round_number: int) -> List[Tuple[Vertex, int]]:
        """Subclass hook: the round's ``(vertex, count)`` pairs, sources order."""

    @abstractmethod
    def expected_rate(self, vertex: Vertex) -> float:
        """A-priori expected arrivals per round at ``vertex`` (no stream use)."""


class _StreamedArrivals(ArrivalProcess):
    """Shared machinery for processes that draw one Bernoulli bit per round."""

    def __init__(self, sources, sinks, seed) -> None:
        super().__init__(sources, sinks, seed)
        self._streams: Dict[Vertex, SeedBitStream] = {
            vertex: SeedBitStream(derive_stream_seed(seed, vertex), _STREAM_KAPPA)
            for vertex in self._sources
        }

    def _bernoulli(self, vertex: Vertex, threshold: int) -> bool:
        return self._streams[vertex].consume_int(_RATE_BITS) < threshold


class PoissonArrivals(_StreamedArrivals):
    """Bernoulli thinning of the round clock -- the discrete Poisson analogue.

    Each source independently generates one message per round with
    probability ``rate``; inter-arrival gaps are geometric, the discrete
    limit of exponential inter-arrival times.
    """

    def __init__(self, sources, sinks, seed, rate: float = 0.1) -> None:
        super().__init__(sources, sinks, seed)
        self._rate = float(rate)
        self._cut = _threshold(self._rate)

    def _arrivals(self, round_number: int) -> List[Tuple[Vertex, int]]:
        # Every stream advances every round, arrival or not: the realization
        # at one vertex never depends on which other vertices exist.
        return [(v, 1) for v in self._sources if self._bernoulli(v, self._cut)]

    def expected_rate(self, vertex: Vertex) -> float:
        return self._rate if vertex in self._streams else 0.0


class PeriodicArrivals(ArrivalProcess):
    """One message per source every ``period`` rounds, optionally staggered.

    With ``stagger`` (the default) each source's phase offset is a stable
    hash of its identity, spreading submissions across the period instead of
    synchronizing every queue.
    """

    def __init__(self, sources, sinks, seed, period: int = 10, stagger: bool = True) -> None:
        super().__init__(sources, sinks, seed)
        if period < 1:
            raise ValueError("period must be at least 1 round")
        self._period = int(period)
        self._offsets: Dict[Vertex, int] = {
            v: derive_stream_seed(seed, v, salt="offset") % self._period if stagger else 0
            for v in self._sources
        }

    def _arrivals(self, round_number: int) -> List[Tuple[Vertex, int]]:
        phase = (round_number - 1) % self._period
        return [(v, 1) for v in self._sources if self._offsets[v] == phase]

    def expected_rate(self, vertex: Vertex) -> float:
        return 1.0 / self._period if vertex in self._offsets else 0.0


class BurstyArrivals(ArrivalProcess):
    """``burst`` messages land at once every ``period`` rounds (backlog bursts).

    Unlike :class:`~repro.simulation.environment.BurstyEnvironment` (which
    drops attempts while a node is busy), the queued environment retains the
    whole burst as backlog, so burst size directly probes queue drain rates.
    """

    def __init__(
        self, sources, sinks, seed, burst: int = 4, period: int = 20, stagger: bool = True
    ) -> None:
        super().__init__(sources, sinks, seed)
        if period < 1:
            raise ValueError("period must be at least 1 round")
        if burst < 1:
            raise ValueError("burst must be at least 1 message")
        self._period = int(period)
        self._burst = int(burst)
        self._offsets: Dict[Vertex, int] = {
            v: derive_stream_seed(seed, v, salt="offset") % self._period if stagger else 0
            for v in self._sources
        }

    def _arrivals(self, round_number: int) -> List[Tuple[Vertex, int]]:
        phase = (round_number - 1) % self._period
        return [(v, self._burst) for v in self._sources if self._offsets[v] == phase]

    def expected_rate(self, vertex: Vertex) -> float:
        return self._burst / self._period if vertex in self._offsets else 0.0


class ConvergecastArrivals(_StreamedArrivals):
    """Poisson-like arrivals at every source *except* the sinks.

    The convergecast workload of sensor-network data collection: leaves
    generate, sinks only receive.  Requires at least one sink.
    """

    def __init__(self, sources, sinks, seed, rate: float = 0.1) -> None:
        if not sinks:
            raise ValueError("convergecast arrivals need at least one sink")
        sink_set = set(sinks)
        generating = [v for v in sources if v not in sink_set]
        super().__init__(generating, sinks, seed)
        self._rate = float(rate)
        self._cut = _threshold(self._rate)

    def _arrivals(self, round_number: int) -> List[Tuple[Vertex, int]]:
        return [(v, 1) for v in self._sources if self._bernoulli(v, self._cut)]

    def expected_rate(self, vertex: Vertex) -> float:
        return self._rate if vertex in self._streams else 0.0


#: Arrival kind name -> class, the namespace :class:`ArrivalSpec` names.
ARRIVAL_KINDS = {
    "poisson": PoissonArrivals,
    "periodic": PeriodicArrivals,
    "bursty": BurstyArrivals,
    "convergecast": ConvergecastArrivals,
}


def build_arrival_process(
    name: str,
    args: Mapping[str, Any],
    *,
    sources: Sequence[Vertex],
    sinks: Sequence[Vertex],
    seed: int,
) -> ArrivalProcess:
    """Instantiate a registered arrival kind from its spec name and args."""
    try:
        cls = ARRIVAL_KINDS[name]
    except KeyError:
        raise KeyError(
            f"unknown arrival kind {name!r}; known kinds: {sorted(ARRIVAL_KINDS)}"
        ) from None
    return cls(sources, sinks, seed, **dict(args))
