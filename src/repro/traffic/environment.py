"""The queue-backed environment: per-node FIFO backlogs under real load.

:class:`QueuedEnvironment` is the bridge between arrival processes and the
one-outstanding-message restriction of the local broadcast problem: arrivals
enqueue into a per-node FIFO (optionally capacity-bounded, overflow counted as
drops), and whenever a node's MAC slot is free -- no outstanding unacked
message -- the head-of-line message is submitted.  Enqueue, dequeue, delivery
and ack rounds are recorded per message, giving the queue metrics their
backlog, waiting-time and latency distributions.

Delivery semantics follow the paper's abstract MAC layer: a message counts as
*delivered* once every reliable neighbor of its origin has produced a
``recv`` for it -- the event the ack is supposed to certify.  Tracking that
requires observing ``RecvOutput`` events, so this environment overrides
``_on_recv``; the engine's counters-only kernel lane (which never
materializes recv events) therefore disqualifies itself automatically and
queued workloads run on the event-building lanes.  All event-building lanes
(fast / batched / vector / kernel) remain available and byte-identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.events import AckOutput, RecvOutput
from repro.simulation.environment import Environment
from repro.traffic.arrivals import ArrivalProcess

Vertex = Hashable


@dataclass
class _InFlight:
    """Book-keeping for one message between dequeue and ack."""

    origin: Vertex
    enqueue_round: int
    dequeue_round: int
    waiting: Set[Vertex]
    delivered_round: Optional[int] = None


class QueuedEnvironment(Environment):
    """Per-node FIFO backlogs fed by an :class:`ArrivalProcess`.

    Parameters
    ----------
    graph:
        The trial's dual graph (reliable neighborhoods define delivery).
    arrival:
        The arrival process; its ``sources`` are the queue-owning vertices.
    capacity:
        Per-node queue bound; ``0`` (default) means unbounded.  Arrivals to a
        full queue are counted in :attr:`dropped` and discarded.
    """

    def __init__(self, graph, arrival: ArrivalProcess, capacity: int = 0) -> None:
        super().__init__()
        if capacity < 0:
            raise ValueError("capacity must be non-negative (0 = unbounded)")
        self._graph = graph
        self._arrival = arrival
        self._capacity = int(capacity)
        try:
            self._order: List[Vertex] = sorted(arrival.sources)
        except TypeError:
            self._order = sorted(arrival.sources, key=repr)
        self._queues: Dict[Vertex, Deque[Tuple[str, int]]] = {
            v: deque() for v in self._order
        }
        self._pending: Dict[str, _InFlight] = {}
        # Aggregate counters and per-message samples the queue metric reads.
        self.offered = 0
        self.enqueued = 0
        self.dropped = 0
        self.acked = 0
        self.delivered_before_ack = 0
        self.rounds_observed = 0
        self.backlog_samples: List[int] = []
        self.wait_samples: List[int] = []
        self.delivery_latencies: List[int] = []
        self.ack_latencies: List[int] = []

    @property
    def arrival(self) -> ArrivalProcess:
        return self._arrival

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def delivered(self) -> int:
        """Messages received by the origin's entire reliable neighborhood."""
        return len(self.delivery_latencies)

    def backlog(self, vertex: Vertex) -> int:
        """Messages queued (not yet submitted) at one vertex, right now."""
        queue = self._queues.get(vertex)
        return len(queue) if queue is not None else 0

    def total_backlog(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    # ------------------------------------------------------------------
    # environment hooks
    # ------------------------------------------------------------------
    def _wanted_submissions(self, round_number: int) -> Iterable[tuple]:
        for vertex, count in self._arrival.arrivals_for_round(round_number):
            queue = self._queues[vertex]
            for index in range(count):
                self.offered += 1
                if self._capacity and len(queue) >= self._capacity:
                    self.dropped += 1
                    continue
                queue.append((f"traffic-{vertex}-r{round_number}-{index}", round_number))
                self.enqueued += 1
        ready = []
        for vertex in self._order:
            if vertex in self._busy:
                continue
            queue = self._queues[vertex]
            if not queue:
                continue
            payload, enqueue_round = queue.popleft()
            record = _InFlight(
                origin=vertex,
                enqueue_round=enqueue_round,
                dequeue_round=round_number,
                waiting=set(self._graph.reliable_neighbors(vertex)),
            )
            if not record.waiting:
                # An isolated origin has nobody to deliver to: delivery is
                # vacuously complete the moment the message hits the air.
                record.delivered_round = round_number
                self.delivery_latencies.append(round_number - enqueue_round)
            self._pending[payload] = record
            self.wait_samples.append(round_number - enqueue_round)
            ready.append((vertex, payload))
        # Sampled after arrivals and head-of-line dequeues: the backlog that
        # actually waits through the round.
        self.backlog_samples.append(self.total_backlog())
        self.rounds_observed = round_number
        return ready

    def _on_recv(self, round_number: int, event: RecvOutput) -> None:
        record = self._pending.get(event.message.payload)
        if record is None or record.delivered_round is not None:
            return
        record.waiting.discard(event.vertex)
        if not record.waiting:
            record.delivered_round = round_number
            self.delivery_latencies.append(round_number - record.enqueue_round)

    def _on_ack(self, round_number: int, event: AckOutput) -> None:
        record = self._pending.pop(event.message.payload, None)
        if record is None:
            return
        self.acked += 1
        self.ack_latencies.append(round_number - record.enqueue_round)
        if record.delivered_round is not None:
            self.delivered_before_ack += 1
