"""Dual graph network generators.

Every generator returns a pair ``(DualGraph, Embedding)`` so that the region
partition machinery and the r-geographic property checks are always available
to callers.  All randomness flows through an explicit ``random.Random``
instance (or an integer seed) so that experiments are reproducible.

Families provided:

* :func:`random_geographic_network` -- points dropped uniformly at random in a
  square; the workhorse for the benchmarks.
* :func:`grid_network` -- vertices on a regular lattice.
* :func:`line_network` -- a multihop path, used by the abstract MAC flooding
  experiments.
* :func:`clique_network` -- all vertices within distance 1 (single-hop, dense
  contention), used for the acknowledgment lower-bound context experiment.
* :func:`star_network` -- ``Δ`` broadcasters around one receiver, the explicit
  worst case for acknowledgment described in the paper's introduction.
* :func:`cluster_network` / :func:`two_clusters_network` -- dense clusters
  bridged by grey-zone (unreliable) links, highlighting the role of the link
  scheduler.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, List, Optional, Tuple, Union

from repro.dualgraph.geometric import (
    Embedding,
    GreyZonePolicy,
    always_unreliable_policy,
    geographic_dual_graph,
)
from repro.dualgraph.graph import DualGraph

RandomLike = Union[int, random.Random, None]


def _as_rng(seed: RandomLike) -> random.Random:
    """Normalize a seed-or-Random argument into a ``random.Random``."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_geographic_network(
    n: int,
    side: float = 4.0,
    r: float = 2.0,
    rng: RandomLike = None,
    grey_zone_policy: GreyZonePolicy = always_unreliable_policy,
    grey_zone_edge_probability: Optional[float] = None,
    require_connected: bool = False,
    max_attempts: int = 50,
) -> Tuple[DualGraph, Embedding]:
    """Drop ``n`` points uniformly at random in a ``side x side`` square.

    Pairs at distance <= 1 become reliable edges; grey-zone pairs (distance in
    ``(1, r]``) are classified by ``grey_zone_policy`` -- or, when
    ``grey_zone_edge_probability`` is given, each grey-zone pair independently
    becomes an unreliable edge with that probability and is otherwise left
    unconnected.

    Parameters
    ----------
    require_connected:
        When true, re-sample positions until ``G`` is connected (up to
        ``max_attempts`` times).
    """
    if n <= 0:
        raise ValueError(f"need at least one vertex, got n={n}")
    rng = _as_rng(rng)

    policy = grey_zone_policy
    if grey_zone_edge_probability is not None:
        if not 0.0 <= grey_zone_edge_probability <= 1.0:
            raise ValueError("grey_zone_edge_probability must be in [0, 1]")

        def policy(u, v, distance, _p=grey_zone_edge_probability, _rng=rng):
            return "unreliable" if _rng.random() < _p else "none"

    for _ in range(max(1, max_attempts)):
        positions = {
            i: (rng.uniform(0.0, side), rng.uniform(0.0, side)) for i in range(n)
        }
        graph, embedding = geographic_dual_graph(positions, r=r, grey_zone_policy=policy)
        if not require_connected or graph.is_reliably_connected():
            return graph, embedding
    raise RuntimeError(
        f"could not sample a connected network of n={n} in {max_attempts} attempts; "
        "increase density (smaller side) or allow disconnected graphs"
    )


def grid_network(
    rows: int,
    cols: int,
    spacing: float = 0.9,
    r: float = 2.0,
    grey_zone_policy: GreyZonePolicy = always_unreliable_policy,
) -> Tuple[DualGraph, Embedding]:
    """Vertices on a regular ``rows x cols`` lattice with the given spacing.

    With the default spacing of 0.9 every lattice neighbor is a reliable
    neighbor, and diagonal / two-hop lattice neighbors fall in the grey zone
    when ``r`` is large enough.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    positions = {
        (i * cols + j): (j * spacing, i * spacing)
        for i in range(rows)
        for j in range(cols)
    }
    return geographic_dual_graph(positions, r=r, grey_zone_policy=grey_zone_policy)


def line_network(
    n: int,
    spacing: float = 0.9,
    r: float = 2.0,
    grey_zone_policy: GreyZonePolicy = always_unreliable_policy,
) -> Tuple[DualGraph, Embedding]:
    """A path of ``n`` vertices, ``spacing`` apart along the x axis."""
    if n <= 0:
        raise ValueError("need at least one vertex")
    positions = {i: (i * spacing, 0.0) for i in range(n)}
    return geographic_dual_graph(positions, r=r, grey_zone_policy=grey_zone_policy)


def clique_network(n: int, radius: float = 0.45, r: float = 2.0) -> Tuple[DualGraph, Embedding]:
    """All ``n`` vertices within mutual distance <= 1 (a reliable clique).

    Vertices are placed on a circle of the given radius (diameter <= 1), so
    every pair is a reliable neighbor.  This is the maximal-contention
    single-hop topology used by the lower-bound context experiments.
    """
    if n <= 0:
        raise ValueError("need at least one vertex")
    if radius <= 0 or radius > 0.5:
        raise ValueError("radius must be in (0, 0.5] so that the diameter stays <= 1")
    positions = {}
    for i in range(n):
        angle = 2.0 * math.pi * i / max(n, 1)
        positions[i] = (radius * math.cos(angle), radius * math.sin(angle))
    return geographic_dual_graph(positions, r=r)


def star_network(
    leaves: int,
    grey_zone_policy: GreyZonePolicy = always_unreliable_policy,
    r: float = 2.0,
) -> Tuple[DualGraph, Embedding]:
    """One central receiver (vertex 0) surrounded by ``leaves`` broadcasters.

    The leaves sit on a circle of radius 1 around the center, so every leaf is
    a reliable neighbor of the center.  Leaves are pairwise within the grey
    zone (distance <= 2), so with the default policy they can hear each other
    only when the link scheduler says so.  This matches the paper's worst case
    for the acknowledgment bound: a receiver with ``Δ`` neighboring
    broadcasters can absorb only one message per round.
    """
    if leaves <= 0:
        raise ValueError("need at least one leaf")
    positions = {0: (0.0, 0.0)}
    for i in range(leaves):
        angle = 2.0 * math.pi * i / leaves
        positions[i + 1] = (math.cos(angle), math.sin(angle))
    return geographic_dual_graph(positions, r=r, grey_zone_policy=grey_zone_policy)


def cluster_network(
    clusters: int,
    cluster_size: int,
    cluster_spacing: float = 1.5,
    cluster_radius: float = 0.4,
    r: float = 2.0,
    rng: RandomLike = None,
    grey_zone_policy: GreyZonePolicy = always_unreliable_policy,
) -> Tuple[DualGraph, Embedding]:
    """Dense clusters along a line, bridged only by grey-zone links.

    Each cluster is a reliable clique (all members within distance <= 1);
    members of adjacent clusters fall in the grey zone, so inter-cluster
    connectivity exists only through unreliable edges controlled by the link
    scheduler.  This family makes link-scheduler effects very visible.
    """
    if clusters <= 0 or cluster_size <= 0:
        raise ValueError("clusters and cluster_size must be positive")
    rng = _as_rng(rng)
    positions = {}
    vertex = 0
    for c in range(clusters):
        center_x = c * cluster_spacing
        for _ in range(cluster_size):
            angle = rng.uniform(0.0, 2.0 * math.pi)
            rho = rng.uniform(0.0, cluster_radius)
            positions[vertex] = (center_x + rho * math.cos(angle), rho * math.sin(angle))
            vertex += 1
    return geographic_dual_graph(positions, r=r, grey_zone_policy=grey_zone_policy)


def two_clusters_network(
    cluster_size: int = 6,
    gap: float = 1.5,
    r: float = 2.0,
    rng: RandomLike = None,
) -> Tuple[DualGraph, Embedding]:
    """Convenience wrapper: exactly two clusters bridged by unreliable links."""
    return cluster_network(
        clusters=2,
        cluster_size=cluster_size,
        cluster_spacing=gap,
        rng=rng,
        r=r,
    )
