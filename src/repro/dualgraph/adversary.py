"""Oblivious link schedulers (the adversary of Section 2).

A *link scheduler* resolves, for every round ``t``, which edges of
``E' \\ E`` are added to the reliable graph ``G`` to form the round's
communication topology ``G_t``.  The paper's model is **oblivious**: the whole
schedule is fixed before the execution starts, so decisions may depend on the
round number, the topology, and anything known a priori -- but never on the
random choices of the algorithm.

Every scheduler in this module honors that restriction by computing its
inclusions as a deterministic function of ``(its own fixed seed, the edge, the
round number)``.  This makes the schedule a pure function of the round number,
exactly as if the infinite sequence ``G_1, G_2, ...`` had been written down in
advance, while avoiding the memory cost of materializing it.

Schedulers provided:

* :class:`NoUnreliableScheduler` -- the topology is always exactly ``G``.
* :class:`FullInclusionScheduler` -- the topology is always exactly ``G'``.
* :class:`IIDScheduler` -- each unreliable edge appears independently with a
  fixed probability each round.
* :class:`PeriodicScheduler` -- unreliable edges toggle on/off with a fixed
  period and duty cycle (models coarse time-varying fading).
* :class:`AntiScheduleAdversary` -- a *targeted* oblivious adversary built
  against a known, fixed broadcast-probability schedule (such as Decay's): it
  includes many unreliable edges in rounds where the victim schedule
  transmits with high probability (inflating contention) and removes them in
  rounds where the victim transmits with low probability (starving the
  receiver).  This is the §1 "Discussion" adversary that motivates permuting
  the probability schedule with seed agreement.
* :class:`TraceScheduler` -- an explicit, finite schedule given as a list,
  convenient for unit tests.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import random
from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.dualgraph.graph import DualGraph, Edge, TopologyIndex, normalize_edge

_TWO_64 = float(1 << 64)  # shared by _edge_round_hash and the IID fast paths, which must agree


class SchedulerDeltaCache:
    """Cross-trial cache of per-round unreliable-edge-id deltas.

    An oblivious scheduler's per-round delta -- the tuple of dense edge ids
    included in round ``t`` -- is a pure function of ``(scheduler
    configuration, topology structure, t)``.  Sweeps and multi-trial
    experiments re-derive exactly the same deltas in every trial (each trial
    builds a fresh graph and scheduler with the same parameters), and for
    hash-driven schedulers like :class:`IIDScheduler` that derivation is one
    SHA-256 per unreliable edge per round -- the single most expensive part
    of reception resolution.  This cache shares the computed deltas across
    every scheduler instance whose :meth:`LinkScheduler.delta_cache_key`
    matches, so the hashing happens once per sweep point instead of once per
    trial.

    Contract:

    * Entries are keyed by ``(delta_cache_key, round_number)``.  The key
      embeds the scheduler type, its full configuration (seed, probability,
      period, ...) and the structural
      :attr:`~repro.dualgraph.graph.TopologyIndex.fingerprint` of the indexed
      topology, so distinct schedules can never alias.
    * Values are the exact tuples
      :meth:`LinkScheduler._compute_unreliable_edge_ids` would return --
      byte-identical schedules, byte-identical traces.
    * The cache is bounded (FIFO eviction at ``maxsize`` entries); eviction
      only ever costs recomputation, never correctness.  :meth:`preload`
      raises the bound to fit an explicitly prebuilt table (see its
      docstring).

    A process-wide instance (:func:`process_delta_cache`) is attached to
    every scheduler at construction; :meth:`LinkScheduler.attach_delta_cache`
    swaps in a private cache (or ``None`` to disable caching).  For
    :class:`~repro.analysis.sweep.ParallelSweepRunner` fan-out, a prebuilt
    table (:func:`prebuild_scheduler_deltas`) can be shipped to workers
    through the reserved ``scheduler_delta_table`` common kwarg, which
    preloads each worker's process cache before any trial runs.
    """

    __slots__ = ("_table", "_set_table", "_maxsize", "hits", "misses")

    #: Default entry bound: at a few KB per cached delta this keeps the
    #: process-wide cache in the tens of MB even for adversarial workloads.
    DEFAULT_MAXSIZE = 8192

    def __init__(
        self,
        table: Optional[Mapping[Tuple[Hashable, int], Tuple[int, ...]]] = None,
        maxsize: Optional[int] = DEFAULT_MAXSIZE,
    ) -> None:
        self._table: Dict[Tuple[Hashable, int], Tuple[int, ...]] = (
            dict(table) if table else {}
        )
        # The frozenset views of the same deltas, cached separately: the
        # vectorized resolver consumes sets, and building a frozenset over a
        # few thousand ids every round costs more than the whole rest of a
        # sparse round's resolution.  Set views are process-local (rebuilt
        # from the id tuples after a preload) and bounded like the id table.
        self._set_table: Dict[Tuple[Hashable, int], FrozenSet[int]] = {}
        self._maxsize = maxsize
        self.hits = 0
        self.misses = 0

    def lookup(self, key: Hashable, round_number: int) -> Optional[Tuple[int, ...]]:
        """The cached delta for ``(key, round_number)``, or ``None`` on a miss."""
        ids = self._table.get((key, round_number))
        if ids is None:
            self.misses += 1
        else:
            self.hits += 1
        return ids

    def store(self, key: Hashable, round_number: int, ids: Tuple[int, ...]) -> None:
        """Record a computed delta (evicting the oldest entry when full)."""
        table = self._table
        if self._maxsize is not None and len(table) >= self._maxsize:
            table.pop(next(iter(table)))
        table[(key, round_number)] = ids

    def lookup_set(self, key: Hashable, round_number: int) -> Optional[FrozenSet[int]]:
        """The cached frozenset view of a delta, or ``None`` when unbuilt."""
        return self._set_table.get((key, round_number))

    def store_set(self, key: Hashable, round_number: int, ids: FrozenSet[int]) -> None:
        """Record a delta's frozenset view (same FIFO bound as the id table)."""
        table = self._set_table
        if self._maxsize is not None and len(table) >= self._maxsize:
            table.pop(next(iter(table)))
        table[(key, round_number)] = ids

    def preload(self, table: Mapping[Tuple[Hashable, int], Tuple[int, ...]]) -> None:
        """Merge a prebuilt ``(key, round) -> ids`` table into the cache.

        A preloaded table is a deliberate memory commitment: if it is larger
        than ``maxsize``, the bound is raised to fit it (the bound exists to
        stop unbounded *incremental* growth, not to silently drop entries an
        operator explicitly prebuilt).  Preloading is idempotent-cheap: when
        the table's first *and* last entries are already cached with the same
        values the merge is skipped, so repeated preloads of the same table
        (e.g. per-grid-point re-sends) cost two dict lookups instead of a
        full ``update`` -- while a superset table (same scheduler, more
        rounds) still merges, because its last entry is new.
        """
        if not table:
            return
        items = iter(table.items())
        first_key, first_ids = next(items)
        if self._table.get(first_key) == first_ids:
            last_key = next(reversed(table)) if hasattr(table, "__reversed__") else None
            if last_key is not None and self._table.get(last_key) == table[last_key]:
                # Already merged (or a prefix survived eviction -- dropped
                # rounds are simply recomputed on demand).
                return
        self._table.update(table)
        if self._maxsize is not None and len(self._table) > self._maxsize:
            self._maxsize = len(self._table)

    def export_table(self) -> Dict[Tuple[Hashable, int], Tuple[int, ...]]:
        """A picklable snapshot of the cache contents (plain dict of id tuples)."""
        return dict(self._table)

    def clear(self) -> None:
        self._table.clear()
        self._set_table.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._table)

    def __repr__(self) -> str:
        return (
            f"SchedulerDeltaCache(entries={len(self._table)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


#: The process-wide cache every scheduler uses unless told otherwise.
_PROCESS_DELTA_CACHE = SchedulerDeltaCache()


def process_delta_cache() -> SchedulerDeltaCache:
    """The process-wide :class:`SchedulerDeltaCache` shared by all schedulers."""
    return _PROCESS_DELTA_CACHE


def preload_process_delta_cache(
    table: Mapping[Tuple[Hashable, int], Tuple[int, ...]],
) -> None:
    """Merge a prebuilt delta table into the process-wide cache.

    This is the worker-side half of cross-process delta sharing: a parent
    builds the table once (:func:`prebuild_scheduler_deltas`), ships it
    through :class:`~repro.analysis.sweep.ParallelSweepRunner`'s reserved
    ``scheduler_delta_table`` common kwarg, and every worker preloads it here
    before running its grid points.
    """
    _PROCESS_DELTA_CACHE.preload(table)


#: On-disk delta table format version; bumped if the pickle layout changes.
_DELTA_TABLE_FORMAT = 1


def _library_version() -> str:
    # Local import: repro/__init__ imports this module at package import time.
    from repro import __version__

    return __version__


def _delta_table_path(cache_dir: str, cache_key: str) -> str:
    safe = "".join(c if c.isalnum() or c in "-._" else "_" for c in cache_key)
    return os.path.join(cache_dir, f"scheduler-deltas-{safe}.pkl")


def prebuild_scheduler_deltas(
    scheduler: "LinkScheduler",
    rounds: int,
    cache_dir: Optional[str] = None,
    cache_key: Optional[str] = None,
) -> Dict[Tuple[Hashable, int], Tuple[int, ...]]:
    """Compute rounds ``1..rounds`` of a scheduler's deltas into a plain table.

    The result is picklable and keyed exactly as :class:`SchedulerDeltaCache`
    stores entries, so it can be passed across process boundaries and fed to
    :func:`preload_process_delta_cache` (or ``SchedulerDeltaCache(table)``).
    Raises ``ValueError`` for schedulers whose deltas are not cacheable
    (adaptive adversaries, custom subclasses without a cache key).

    When ``cache_dir`` is given the table is additionally persisted on disk,
    keyed by ``cache_key`` -- callers with a scenario spec pass
    ``spec.fingerprint()`` (see
    :func:`repro.scenarios.runtime.prebuild_delta_table`); without an explicit
    key a stable hash of the scheduler's own ``delta_cache_key()`` is used.
    A later invocation with the same key and a round budget the stored table
    already covers loads the file and **skips the recomputation entirely** --
    this is what amortizes per-round schedule hashing across repeated
    benchmark/CLI invocations, not just across trials of one process.  Files
    are pickles; a cache dir is operator-local state, treat it like any other
    build artifact (unreadable or stale-format files are ignored and
    rewritten).
    """
    key = scheduler.delta_cache_key()
    if key is None:
        raise ValueError(
            f"{type(scheduler).__name__} deltas are not cacheable "
            "(delta_cache_key() returned None)"
        )

    path = None
    if cache_dir is not None:
        if cache_key is None:
            cache_key = hashlib.sha256(repr(key).encode()).hexdigest()[:16]
        path = _delta_table_path(cache_dir, cache_key)
        if os.path.exists(path):
            try:
                with open(path, "rb") as handle:
                    stored = pickle.load(handle)
                if (
                    isinstance(stored, dict)
                    and stored.get("format") == _DELTA_TABLE_FORMAT
                    # A schedule is only as stable as the code that derives
                    # it: a library upgrade invalidates stored tables even
                    # when the scheduler's signature tuple is unchanged, so
                    # stale schedules can never silently survive a version
                    # bump and break byte-reproducibility.
                    and stored.get("version") == _library_version()
                    and stored.get("rounds", 0) >= rounds
                ):
                    return stored["table"]
            except Exception:
                # Unreadable/corrupt cache file (torn write, disk damage):
                # pickle.load raises a wide-open set of exception types on
                # garbage bytes (UnpicklingError, EOFError, ValueError,
                # MemoryError, ImportError, ...), and the contract here is
                # best-effort -- recompute and overwrite below.
                pass

    index = scheduler.graph.topology_index()
    table = {
        (key, t): scheduler._compute_unreliable_edge_ids(t, index)
        for t in range(1, rounds + 1)
    }

    if path is not None:
        os.makedirs(cache_dir, exist_ok=True)
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "wb") as handle:
            pickle.dump(
                {
                    "format": _DELTA_TABLE_FORMAT,
                    "version": _library_version(),
                    "rounds": rounds,
                    "table": table,
                },
                handle,
            )
        os.replace(tmp_path, path)
    return table


class LinkScheduler(ABC):
    """Base class for oblivious link schedulers.

    Subclasses implement :meth:`unreliable_edges_for_round`; the simulator
    calls :meth:`resolve_topology` to obtain the full edge set of the round's
    communication topology ``G_t`` (always a superset of ``E``).

    For the engine's fast path, schedulers additionally expose a *delta
    interface*: :meth:`unreliable_edge_ids_for_round` reports the included
    edges as dense integer ids from the graph's
    :meth:`~repro.dualgraph.graph.DualGraph.topology_index`, memoized per
    round, so the engine never touches frozensets of edges on the hot path.
    Subclasses with structure to exploit (periodic masks, precomputed hash
    prefixes) override :meth:`_compute_unreliable_edge_ids`; the default maps
    :meth:`unreliable_edges_for_round` through the index, so any oblivious
    scheduler gets the delta interface for free and both views always agree.
    """

    def __init__(self, graph: DualGraph) -> None:
        self._graph = graph
        self._ids_memo_key: Optional[Tuple[int, int]] = None
        self._ids_memo: Tuple[int, ...] = ()
        self._ids_set_memo_key: Optional[Tuple[int, int]] = None
        self._ids_set_memo: FrozenSet[int] = frozenset()
        self._delta_cache: Optional[SchedulerDeltaCache] = _PROCESS_DELTA_CACHE
        self._cache_key_memo: Optional[Tuple[int, Optional[Hashable]]] = None

    @property
    def graph(self) -> DualGraph:
        return self._graph

    @property
    def is_adaptive(self) -> bool:
        """Whether the schedule may depend on the round's transmit decisions.

        Oblivious schedulers (the paper's model, and every scheduler in this
        module except the :class:`AdaptiveLinkScheduler` subclasses) return
        False: their whole schedule is a pure function of the round number,
        fixed before the execution starts.
        """
        return False

    @abstractmethod
    def unreliable_edges_for_round(self, round_number: int) -> FrozenSet[Edge]:
        """The subset of ``E' \\ E`` included in round ``round_number`` (1-based)."""

    def topology_edges_for_round(self, round_number: int) -> FrozenSet[Edge]:
        """All edges of the communication topology ``G_t`` for the round."""
        included = self.unreliable_edges_for_round(round_number)
        extra = included & self._graph.unreliable_edges
        return frozenset(self._graph.reliable_edges | extra)

    def unreliable_edge_ids_for_round(self, round_number: int) -> Tuple[int, ...]:
        """Dense ids of the unreliable edges included in ``round_number``.

        This is the scheduler half of the engine's fast-path contract:

        * Ids refer to ``self.graph.topology_index()`` (the dense edge ids of
          ``E' \\ E``); the tuple is the round's complete inclusion delta.
        * The result is memoized per ``(round, topology version)``, so the
          engine -- and anything else inspecting the schedule -- can query
          the current round repeatedly for free.
        * For schedulers exposing a :meth:`delta_cache_key`, computed deltas
          are additionally shared through the attached
          :class:`SchedulerDeltaCache`, so structurally identical trials
          (same scheduler configuration, same indexed topology) never
          re-derive a round's delta.

        The returned tuple must be treated as immutable; it may be the cached
        object shared across scheduler instances and trials.
        """
        key = (round_number, self._graph.topology_version)
        if key == self._ids_memo_key:
            return self._ids_memo
        cache = self._delta_cache
        cache_key = self.delta_cache_key() if cache is not None else None
        ids: Optional[Tuple[int, ...]] = None
        if cache_key is not None:
            ids = cache.lookup(cache_key, round_number)
        if ids is None:
            ids = self._compute_unreliable_edge_ids(
                round_number, self._graph.topology_index()
            )
            if cache_key is not None:
                cache.store(cache_key, round_number, ids)
        self._ids_memo_key = key
        self._ids_memo = ids
        return ids

    def unreliable_edge_id_set_for_round(self, round_number: int) -> FrozenSet[int]:
        """The round's inclusion delta as a frozenset of dense edge ids.

        The set view of :meth:`unreliable_edge_ids_for_round`, memoized per
        ``(round, topology version)``.  The vectorized reception resolver
        intersects it with each transmitter's precomputed incident-edge-id
        set (:attr:`~repro.dualgraph.graph.TopologyIndex.unreliable_incident_ids`),
        keeping the whole unreliable-edge step in C-level set operations.
        """
        key = (round_number, self._graph.topology_version)
        if key == self._ids_set_memo_key:
            return self._ids_set_memo
        cache = self._delta_cache
        cache_key = self.delta_cache_key() if cache is not None else None
        ids_set: Optional[FrozenSet[int]] = None
        if cache_key is not None:
            ids_set = cache.lookup_set(cache_key, round_number)
        if ids_set is None:
            ids_set = frozenset(self.unreliable_edge_ids_for_round(round_number))
            if cache_key is not None:
                cache.store_set(cache_key, round_number, ids_set)
        self._ids_set_memo = ids_set
        self._ids_set_memo_key = key
        return ids_set

    def _compute_unreliable_edge_ids(
        self, round_number: int, index: TopologyIndex
    ) -> Tuple[int, ...]:
        """Uncached id computation; override when structure allows a fast path."""
        return index.edge_ids(self.unreliable_edges_for_round(round_number))

    def delta_cache_key(self) -> Optional[Hashable]:
        """The cross-trial identity of this scheduler's delta stream, or ``None``.

        Two scheduler instances with equal keys are guaranteed to produce
        identical :meth:`unreliable_edge_ids_for_round` results for every
        round, even across processes -- that is the license the
        :class:`SchedulerDeltaCache` needs to share deltas between them.  The
        key combines the subclass's configuration signature
        (:meth:`_delta_cache_signature`) with the structural fingerprint of
        the indexed topology; ``None`` (the default for subclasses without a
        signature, and always for adaptive schedulers) disables caching.
        """
        if self.is_adaptive:
            return None
        version = self._graph.topology_version
        memo = self._cache_key_memo
        if memo is not None and memo[0] == version:
            return memo[1]
        signature = self._delta_cache_signature()
        key: Optional[Hashable] = None
        if signature is not None:
            key = (
                type(self).__name__,
                tuple(signature),
                self._graph.topology_index().fingerprint,
            )
        self._cache_key_memo = (version, key)
        return key

    def _delta_cache_signature(self) -> Optional[Tuple[Hashable, ...]]:
        """The scheduler-configuration part of :meth:`delta_cache_key`.

        Subclasses whose schedule is a pure function of constructor arguments
        return those arguments (e.g. ``(seed, probability)``); the default
        ``None`` keeps unknown subclasses out of the cache, which is always
        safe -- their deltas are simply recomputed per instance.
        """
        return None

    def attach_delta_cache(self, cache: Optional[SchedulerDeltaCache]) -> None:
        """Use ``cache`` for cross-trial delta sharing (``None`` disables it).

        Schedulers are born attached to the process-wide cache
        (:func:`process_delta_cache`); experiments that want isolation (or a
        preloaded private table) swap it here.
        """
        self._delta_cache = cache

    def unreliable_edge_included(self, edge_id: int, round_number: int) -> bool:
        """Whether one unreliable edge (by dense id) is scheduled this round.

        The engine's point-query (PR-2) fast path asks only about the edges
        incident to the round's transmitters, which for sparse transmission
        patterns is far fewer edges than the whole of ``E' \\ E``.  The
        default answers from the memoized set view of the round's full id
        delta; schedulers whose per-edge decision is O(1) (e.g.
        :class:`IIDScheduler`) override this so that never-queried edges cost
        nothing at all.
        """
        return edge_id in self.unreliable_edge_id_set_for_round(round_number)

    def resolve_topology(
        self, round_number: int, transmitting: FrozenSet
    ) -> FrozenSet[Edge]:
        """The topology the simulator uses for the round.

        Oblivious schedulers ignore ``transmitting`` (the set of vertices that
        decided to transmit this round); adaptive schedulers override this to
        exploit it.  Keeping the dispatch here lets the engine treat both
        kinds uniformly.
        """
        return self.topology_edges_for_round(round_number)

    def describe(self) -> str:
        """A short human-readable description used in experiment reports."""
        return type(self).__name__


class AdaptiveLinkScheduler(LinkScheduler):
    """Base class for *adaptive* link schedulers (outside the paper's model).

    The paper assumes an oblivious scheduler and notes (citing Ghaffari,
    Lynch, Newport PODC 2013) that local broadcast with efficient progress is
    **impossible** against an adaptive adversary that may pick each round's
    unreliable edges after seeing the round's transmit decisions.  This class
    exists to reproduce that contrast experimentally (experiment E11): it is a
    strictly stronger adversary than anything LBAlg is designed for.
    """

    @property
    def is_adaptive(self) -> bool:
        return True

    def unreliable_edges_for_round(self, round_number: int) -> FrozenSet[Edge]:
        # The non-adaptive projection: used only if someone drives an adaptive
        # scheduler through the oblivious interface (e.g. for inspection).
        return frozenset()

    @abstractmethod
    def adaptive_unreliable_edges(
        self, round_number: int, transmitting: FrozenSet
    ) -> FrozenSet[Edge]:
        """The unreliable edges to include, given this round's transmitters."""

    def resolve_topology(
        self, round_number: int, transmitting: FrozenSet
    ) -> FrozenSet[Edge]:
        included = self.adaptive_unreliable_edges(round_number, frozenset(transmitting))
        extra = included & self._graph.unreliable_edges
        return frozenset(self._graph.reliable_edges | extra)


class CollisionAdaptiveAdversary(AdaptiveLinkScheduler):
    """An adaptive adversary that manufactures collisions whenever it can.

    After seeing which vertices transmit in the round, for every listening
    vertex that would receive a message over its reliable links (exactly one
    transmitting reliable neighbor), the adversary searches for an unreliable
    edge connecting that vertex to *another* transmitter and includes it,
    turning the clean reception into a collision.  It never adds edges that
    would help (a lone unreliable transmitter is simply left excluded).

    This realizes the intuition behind the adaptive-adversary impossibility
    result: whatever probabilities the algorithm uses, the adversary reacts
    to the realized transmission pattern, so no amount of schedule permutation
    helps.  Progress then relies solely on rounds where the adversary has no
    spare transmitter to collide with.
    """

    def adaptive_unreliable_edges(
        self, round_number: int, transmitting: FrozenSet
    ) -> FrozenSet[Edge]:
        graph = self._graph
        chosen = set()
        for vertex in graph.vertices:
            if vertex in transmitting:
                continue
            reliable_transmitters = [
                v for v in graph.reliable_neighbors(vertex) if v in transmitting
            ]
            if len(reliable_transmitters) != 1:
                continue
            # Find an unreliable edge to a different transmitter to spoil it.
            for other in sorted(graph.potential_neighbors(vertex), key=repr):
                if other in transmitting and other != reliable_transmitters[0]:
                    edge = normalize_edge(vertex, other)
                    if edge in graph.unreliable_edges:
                        chosen.add(edge)
                        break
        return frozenset(chosen)

    def describe(self) -> str:
        return "CollisionAdaptiveAdversary(adaptive, outside the paper's model)"


class NoUnreliableScheduler(LinkScheduler):
    """Never include any unreliable edge: the topology is always ``G``."""

    def unreliable_edges_for_round(self, round_number: int) -> FrozenSet[Edge]:
        return frozenset()

    def _compute_unreliable_edge_ids(
        self, round_number: int, index: TopologyIndex
    ) -> Tuple[int, ...]:
        return ()


class FullInclusionScheduler(LinkScheduler):
    """Always include every unreliable edge: the topology is always ``G'``."""

    def unreliable_edges_for_round(self, round_number: int) -> FrozenSet[Edge]:
        return self._graph.unreliable_edges

    def _compute_unreliable_edge_ids(
        self, round_number: int, index: TopologyIndex
    ) -> Tuple[int, ...]:
        return tuple(range(index.num_unreliable_edges))


def _edge_round_hash(seed: int, edge: Edge, round_number: int, salt: bytes = b"") -> float:
    """Deterministic pseudo-random value in [0, 1) for (seed, edge, round).

    Using a hash keeps the scheduler oblivious (the value depends only on data
    fixed before the execution) and reproducible across runs and platforms.
    """
    endpoints = sorted(repr(v) for v in edge)
    payload = (
        str(seed).encode()
        + b"|"
        + endpoints[0].encode()
        + b"|"
        + endpoints[1].encode()
        + b"|"
        + str(round_number).encode()
        + b"|"
        + salt
    )
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / _TWO_64


class IIDScheduler(LinkScheduler):
    """Each unreliable edge appears independently with probability ``p`` per round."""

    def __init__(self, graph: DualGraph, probability: float = 0.5, seed: int = 0) -> None:
        super().__init__(graph)
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self._p = float(probability)
        self._seed = int(seed)
        self._prefixes_version: Optional[int] = None
        self._prefixes: Tuple[bytes, ...] = ()

    @property
    def probability(self) -> float:
        return self._p

    def unreliable_edges_for_round(self, round_number: int) -> FrozenSet[Edge]:
        if self._p == 0.0:
            return frozenset()
        if self._p == 1.0:
            return self._graph.unreliable_edges
        return frozenset(
            e
            for e in self._graph.unreliable_edges
            if _edge_round_hash(self._seed, e, round_number) < self._p
        )

    def _payload_prefixes(self, index: TopologyIndex) -> Tuple[bytes, ...]:
        """Per-edge-id constant prefix of the `_edge_round_hash` payload.

        The payload is ``seed|e0|e1|round|salt`` with an empty salt; only the
        round varies between rounds, so everything up to and including the
        third separator is hashed from a precomputed bytes object.  The digest
        (and therefore the inclusion decision) is bit-identical to
        :func:`_edge_round_hash`.
        """
        version = self._graph.topology_version
        if version != self._prefixes_version:
            seed_bytes = str(self._seed).encode()
            prefixes = []
            for edge in index.unreliable_edge_list:
                e0, e1 = sorted(repr(v) for v in edge)
                prefixes.append(
                    seed_bytes + b"|" + e0.encode() + b"|" + e1.encode() + b"|"
                )
            self._prefixes = tuple(prefixes)
            self._prefixes_version = version
        return self._prefixes

    def _compute_unreliable_edge_ids(
        self, round_number: int, index: TopologyIndex
    ) -> Tuple[int, ...]:
        if self._p == 0.0:
            return ()
        if self._p == 1.0:
            return tuple(range(index.num_unreliable_edges))
        suffix = str(round_number).encode() + b"|"
        p = self._p
        sha256 = hashlib.sha256
        from_bytes = int.from_bytes
        return tuple(
            eid
            for eid, prefix in enumerate(self._payload_prefixes(index))
            if from_bytes(sha256(prefix + suffix).digest()[:8], "big") / _TWO_64 < p
        )

    def unreliable_edge_included(self, edge_id: int, round_number: int) -> bool:
        # One hash for one edge: the i.i.d. decisions are independent, so a
        # membership query never needs the rest of the round's delta.
        if self._p == 0.0:
            return False
        if self._p == 1.0:
            return True
        prefixes = self._payload_prefixes(self._graph.topology_index())
        payload = prefixes[edge_id] + str(round_number).encode() + b"|"
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "big") / _TWO_64 < self._p

    def _delta_cache_signature(self) -> Tuple[Hashable, ...]:
        # The whole schedule is a pure function of (seed, p) and the edge
        # identities -- exactly what the cache key's topology fingerprint plus
        # this signature pin down.
        return ("iid", self._seed, self._p)

    def describe(self) -> str:
        return f"IIDScheduler(p={self._p})"


class PeriodicScheduler(LinkScheduler):
    """Unreliable edges are all present for ``on_rounds`` rounds, then absent.

    The phase offset of each edge can optionally be staggered by edge (so
    different links fade at different times), still as a fixed function of the
    edge identity.
    """

    def __init__(
        self,
        graph: DualGraph,
        on_rounds: int = 5,
        off_rounds: int = 5,
        stagger: bool = False,
        seed: int = 0,
    ) -> None:
        super().__init__(graph)
        if on_rounds < 0 or off_rounds < 0 or on_rounds + off_rounds == 0:
            raise ValueError("need a positive period with non-negative on/off parts")
        self._on = int(on_rounds)
        self._off = int(off_rounds)
        self._stagger = bool(stagger)
        self._seed = int(seed)
        self._period_masks_version: Optional[int] = None
        self._period_masks: Dict[int, Tuple[int, ...]] = {}

    def _offset_for_edge(self, edge: Edge) -> int:
        if not self._stagger:
            return 0
        period = self._on + self._off
        return int(_edge_round_hash(self._seed, edge, 0, salt=b"offset") * period)

    def unreliable_edges_for_round(self, round_number: int) -> FrozenSet[Edge]:
        period = self._on + self._off
        result = []
        for e in self._graph.unreliable_edges:
            phase = (round_number - 1 + self._offset_for_edge(e)) % period
            if phase < self._on:
                result.append(e)
        return frozenset(result)

    def _compute_unreliable_edge_ids(
        self, round_number: int, index: TopologyIndex
    ) -> Tuple[int, ...]:
        # The schedule is periodic: the inclusion mask depends only on
        # (round - 1) mod period, so at most `period` distinct masks exist.
        # Compute each lazily and reuse it for the rest of the run.
        period = self._on + self._off
        version = self._graph.topology_version
        if version != self._period_masks_version:
            self._period_masks = {}
            self._period_masks_version = version
        phase = (round_number - 1) % period
        mask = self._period_masks.get(phase)
        if mask is None:
            on = self._on
            mask = tuple(
                eid
                for eid, edge in enumerate(index.unreliable_edge_list)
                if (phase + self._offset_for_edge(edge)) % period < on
            )
            self._period_masks[phase] = mask
        return mask

    def _delta_cache_signature(self) -> Tuple[Hashable, ...]:
        return ("periodic", self._on, self._off, self._stagger, self._seed)

    def describe(self) -> str:
        return f"PeriodicScheduler(on={self._on}, off={self._off}, stagger={self._stagger})"


class AntiScheduleAdversary(LinkScheduler):
    """Targeted oblivious adversary against a *known fixed* probability schedule.

    The classic Decay strategy cycles deterministically through broadcast
    probabilities ``1/2, 1/4, ..., 1/Δ``.  Because that schedule is fixed in
    advance, an oblivious link scheduler can be built against it:

    * in rounds where the victim's schedule uses a **high** probability, the
      adversary includes all unreliable edges, maximizing the number of
      simultaneous transmitters around each receiver (collisions), and
    * in rounds where the victim uses a **low** probability, it removes the
      unreliable edges, so receivers hear (almost) nobody.

    ``victim_probabilities`` gives the victim's per-round probability sequence
    (cycled); ``threshold`` splits "high" from "low".  The adversary also works
    against any algorithm, it simply is most damaging to the one it was built
    for -- which is exactly the point of experiment E6.
    """

    def __init__(
        self,
        graph: DualGraph,
        victim_probabilities: Sequence[float],
        threshold: Optional[float] = None,
        phase_offset: int = 0,
    ) -> None:
        super().__init__(graph)
        probs = [float(p) for p in victim_probabilities]
        if not probs:
            raise ValueError("need a non-empty victim probability schedule")
        if any(p < 0.0 or p > 1.0 for p in probs):
            raise ValueError("victim probabilities must be in [0, 1]")
        self._victim = probs
        if threshold is None:
            threshold = sorted(probs)[len(probs) // 2]
        self._threshold = float(threshold)
        self._offset = int(phase_offset)

    @property
    def victim_probabilities(self) -> Tuple[float, ...]:
        return tuple(self._victim)

    @property
    def threshold(self) -> float:
        return self._threshold

    def victim_probability_for_round(self, round_number: int) -> float:
        index = (round_number - 1 + self._offset) % len(self._victim)
        return self._victim[index]

    def unreliable_edges_for_round(self, round_number: int) -> FrozenSet[Edge]:
        if self.victim_probability_for_round(round_number) >= self._threshold:
            return self._graph.unreliable_edges
        return frozenset()

    def _compute_unreliable_edge_ids(
        self, round_number: int, index: TopologyIndex
    ) -> Tuple[int, ...]:
        if self.victim_probability_for_round(round_number) >= self._threshold:
            return tuple(range(index.num_unreliable_edges))
        return ()

    def describe(self) -> str:
        return (
            f"AntiScheduleAdversary(cycle={len(self._victim)}, "
            f"threshold={self._threshold:.3g})"
        )


class TraceScheduler(LinkScheduler):
    """An explicit finite schedule, cycled (or clamped) past its end.

    Parameters
    ----------
    schedule:
        A list whose ``t``-th entry (0-based for round ``t+1``) is an iterable
        of unreliable edges (vertex pairs) included in that round.
    cycle:
        If true, the schedule repeats; otherwise rounds past the end include
        no unreliable edges.
    """

    def __init__(
        self,
        graph: DualGraph,
        schedule: Sequence[Iterable[Tuple]],
        cycle: bool = True,
    ) -> None:
        super().__init__(graph)
        self._schedule: List[FrozenSet[Edge]] = []
        for entry in schedule:
            edges = frozenset(normalize_edge(*pair) for pair in entry)
            unknown = edges - graph.unreliable_edges
            if unknown:
                raise ValueError(
                    f"schedule mentions edges not in E' \\ E: {sorted(map(tuple, unknown))}"
                )
            self._schedule.append(edges)
        self._cycle = bool(cycle)
        self._id_schedule_version: Optional[int] = None
        self._id_schedule: List[Tuple[int, ...]] = []

    def unreliable_edges_for_round(self, round_number: int) -> FrozenSet[Edge]:
        if not self._schedule:
            return frozenset()
        index = round_number - 1
        if index >= len(self._schedule):
            if not self._cycle:
                return frozenset()
            index %= len(self._schedule)
        return self._schedule[index]

    def _compute_unreliable_edge_ids(
        self, round_number: int, index: TopologyIndex
    ) -> Tuple[int, ...]:
        version = self._graph.topology_version
        if version != self._id_schedule_version:
            self._id_schedule = [index.edge_ids(entry) for entry in self._schedule]
            self._id_schedule_version = version
        if not self._id_schedule:
            return ()
        slot = round_number - 1
        if slot >= len(self._id_schedule):
            if not self._cycle:
                return ()
            slot %= len(self._id_schedule)
        return self._id_schedule[slot]

    def describe(self) -> str:
        return f"TraceScheduler(length={len(self._schedule)}, cycle={self._cycle})"
