"""Dual graph radio network substrate.

This package implements the network model of Section 2 of the paper:

* :mod:`repro.dualgraph.graph` -- the :class:`DualGraph` structure ``(G, G')``
  with reliable edges ``E`` and unreliable-capable edges ``E'``.
* :mod:`repro.dualgraph.geometric` -- Euclidean embeddings and the
  *r-geographic* property.
* :mod:`repro.dualgraph.generators` -- families of dual graph networks used by
  tests, examples, and benchmarks.
* :mod:`repro.dualgraph.regions` -- the plane partition into convex regions and
  the region graph of Appendix A.1.
* :mod:`repro.dualgraph.adversary` -- oblivious link schedulers deciding which
  unreliable edges appear in each round's communication topology.
"""

from repro.dualgraph.graph import DualGraph, Edge, TopologyIndex, normalize_edge
from repro.dualgraph.geometric import (
    Embedding,
    euclidean_distance,
    geographic_dual_graph,
    is_r_geographic,
)
from repro.dualgraph.generators import (
    clique_network,
    cluster_network,
    grid_network,
    line_network,
    random_geographic_network,
    star_network,
    two_clusters_network,
)
from repro.dualgraph.regions import GridRegionPartition, RegionGraph
from repro.dualgraph.adversary import (
    AdaptiveLinkScheduler,
    SchedulerDeltaCache,
    prebuild_scheduler_deltas,
    preload_process_delta_cache,
    process_delta_cache,
    AntiScheduleAdversary,
    CollisionAdaptiveAdversary,
    FullInclusionScheduler,
    IIDScheduler,
    LinkScheduler,
    NoUnreliableScheduler,
    PeriodicScheduler,
    TraceScheduler,
)

__all__ = [
    "DualGraph",
    "Edge",
    "TopologyIndex",
    "normalize_edge",
    "Embedding",
    "euclidean_distance",
    "geographic_dual_graph",
    "is_r_geographic",
    "random_geographic_network",
    "line_network",
    "grid_network",
    "clique_network",
    "star_network",
    "cluster_network",
    "two_clusters_network",
    "GridRegionPartition",
    "RegionGraph",
    "LinkScheduler",
    "AdaptiveLinkScheduler",
    "CollisionAdaptiveAdversary",
    "FullInclusionScheduler",
    "NoUnreliableScheduler",
    "IIDScheduler",
    "PeriodicScheduler",
    "AntiScheduleAdversary",
    "TraceScheduler",
    "SchedulerDeltaCache",
    "prebuild_scheduler_deltas",
    "preload_process_delta_cache",
    "process_delta_cache",
]
