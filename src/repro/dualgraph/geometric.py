"""Euclidean embeddings and the *r-geographic* property (Section 2).

An embedding maps every vertex of a dual graph to a point in the plane.  A
dual graph ``(G, G')`` is *r-geographic* with respect to an embedding when

1. any two vertices at Euclidean distance at most 1 are reliable neighbors
   (their edge is in ``E``), and
2. any two vertices at distance greater than ``r`` are not even potential
   neighbors (their edge is not in ``E'``).

Vertices in the "grey zone" -- distance in ``(1, r]`` -- may or may not be
connected, by a reliable or an unreliable edge, at the whim of the network
builder (and in our generators, of a supplied policy).

This module also provides :func:`geographic_dual_graph`, which builds a dual
graph from a set of positions and a grey-zone policy, guaranteeing the
r-geographic property by construction.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from repro.dualgraph.graph import DualGraph, Vertex

Point = Tuple[float, float]

#: A grey-zone policy maps ``(u, v, distance)`` to one of ``"reliable"``,
#: ``"unreliable"`` or ``"none"`` for vertex pairs at distance in ``(1, r]``.
GreyZonePolicy = Callable[[Vertex, Vertex, float], str]


def euclidean_distance(p: Point, q: Point) -> float:
    """Euclidean distance between two points in the plane."""
    return math.hypot(p[0] - q[0], p[1] - q[1])


class Embedding:
    """A mapping from vertices to points in the Euclidean plane."""

    def __init__(self, positions: Mapping[Vertex, Point]) -> None:
        if not positions:
            raise ValueError("an embedding needs at least one vertex position")
        self._positions: Dict[Vertex, Point] = {
            v: (float(p[0]), float(p[1])) for v, p in positions.items()
        }

    def position(self, u: Vertex) -> Point:
        """Return ``emb(u)``."""
        try:
            return self._positions[u]
        except KeyError:
            raise KeyError(f"vertex {u!r} has no embedded position") from None

    def distance(self, u: Vertex, v: Vertex) -> float:
        """Euclidean distance between the embedded positions of ``u`` and ``v``."""
        return euclidean_distance(self.position(u), self.position(v))

    @property
    def vertices(self) -> frozenset:
        return frozenset(self._positions)

    def items(self) -> Iterable[Tuple[Vertex, Point]]:
        return self._positions.items()

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)`` over all embedded points."""
        xs = [p[0] for p in self._positions.values()]
        ys = [p[1] for p in self._positions.values()]
        return min(xs), min(ys), max(xs), max(ys)

    def __contains__(self, u: Vertex) -> bool:
        return u in self._positions

    def __len__(self) -> int:
        return len(self._positions)

    def __repr__(self) -> str:
        return f"Embedding(vertices={len(self._positions)})"


def central_vertex(graph: DualGraph, embedding: Embedding) -> Vertex:
    """The vertex embedded closest to the center of the deployment area.

    Center means the midpoint of the embedding's :meth:`Embedding.bounding_box`;
    ties break by the graph's vertex iteration order.  This is the probe
    placement the locality experiment (E9) uses: a vertex in the middle of the
    area sees representative contention regardless of the network size.
    """
    min_x, min_y, max_x, max_y = embedding.bounding_box()
    cx, cy = (min_x + max_x) / 2.0, (min_y + max_y) / 2.0
    return min(
        graph.vertices,
        key=lambda v: (embedding.position(v)[0] - cx) ** 2
        + (embedding.position(v)[1] - cy) ** 2,
    )


def is_r_geographic(graph: DualGraph, embedding: Embedding, r: float) -> bool:
    """Check whether ``(G, G')`` is r-geographic with respect to ``embedding``.

    This is the literal Section 2 definition:

    * ``d(emb(u), emb(v)) <= 1``  implies  ``{u, v} ∈ E``,
    * ``d(emb(u), emb(v)) > r``   implies  ``{u, v} ∉ E'``.
    """
    return not list(r_geographic_violations(graph, embedding, r, limit=1))


def r_geographic_violations(
    graph: DualGraph,
    embedding: Embedding,
    r: float,
    limit: Optional[int] = None,
) -> List[str]:
    """Return human-readable descriptions of r-geographic violations.

    Parameters
    ----------
    limit:
        Stop after this many violations (``None`` means collect all).
    """
    if r < 1:
        raise ValueError(f"the r-geographic parameter must satisfy r >= 1, got {r}")
    violations: List[str] = []
    vertices = sorted(graph.vertices, key=repr)
    for i, u in enumerate(vertices):
        for v in vertices[i + 1 :]:
            d = embedding.distance(u, v)
            if d <= 1.0 and not graph.has_reliable_edge(u, v):
                violations.append(
                    f"vertices {u!r} and {v!r} are at distance {d:.4f} <= 1 "
                    "but are not reliable neighbors"
                )
            elif d > r and graph.has_any_edge(u, v):
                violations.append(
                    f"vertices {u!r} and {v!r} are at distance {d:.4f} > r={r} "
                    "but share an edge in G'"
                )
            if limit is not None and len(violations) >= limit:
                return violations
    return violations


def always_unreliable_policy(u: Vertex, v: Vertex, distance: float) -> str:
    """Grey-zone policy: every grey-zone pair gets an unreliable edge.

    This is the most adversarial *structure* allowed by the model -- it
    maximizes the number of links the link scheduler can toggle.
    """
    return "unreliable"


def never_connected_policy(u: Vertex, v: Vertex, distance: float) -> str:
    """Grey-zone policy: grey-zone pairs share no edge at all (pure unit disk)."""
    return "none"


def always_reliable_policy(u: Vertex, v: Vertex, distance: float) -> str:
    """Grey-zone policy: grey-zone pairs get reliable edges (densest G)."""
    return "reliable"


def geographic_dual_graph(
    positions: Mapping[Vertex, Point],
    r: float = 2.0,
    grey_zone_policy: GreyZonePolicy = always_unreliable_policy,
) -> Tuple[DualGraph, Embedding]:
    """Build an r-geographic dual graph from vertex positions.

    * pairs at distance <= 1 become reliable edges (mandatory),
    * pairs at distance in (1, r] are classified by ``grey_zone_policy``,
    * pairs at distance > r get no edge (mandatory).

    Returns the graph and its embedding.  The result is r-geographic by
    construction; :func:`is_r_geographic` on it is always true.
    """
    if r < 1:
        raise ValueError(f"the r-geographic parameter must satisfy r >= 1, got {r}")
    embedding = Embedding(positions)
    vertices = list(positions)
    graph = DualGraph(vertices)
    for i, u in enumerate(vertices):
        for v in vertices[i + 1 :]:
            d = embedding.distance(u, v)
            if d <= 1.0:
                graph.add_reliable_edge(u, v)
            elif d <= r:
                decision = grey_zone_policy(u, v, d)
                if decision == "reliable":
                    graph.add_reliable_edge(u, v)
                elif decision == "unreliable":
                    graph.add_unreliable_edge(u, v)
                elif decision != "none":
                    raise ValueError(
                        "grey-zone policy must return 'reliable', 'unreliable' or "
                        f"'none', got {decision!r}"
                    )
    return graph, embedding
