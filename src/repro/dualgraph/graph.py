"""The dual graph structure ``(G, G')`` of Section 2.

A dual graph describes a radio network with two kinds of links:

* **reliable** links, the edge set ``E`` of graph ``G = (V, E)``; these edges
  are present in the communication topology of *every* round, and
* **unreliable** links, the edges ``E' \\ E`` of graph ``G' = (V, E')`` with
  ``E`` a subset of ``E'``; in each round an oblivious *link scheduler*
  (see :mod:`repro.dualgraph.adversary`) decides which of them participate.

The class below stores both edge sets, exposes the neighborhood accessors
used throughout the paper (``N_G(u)`` and ``N_G'(u)``), and computes the two
degree bounds the algorithms are allowed to know:

* ``Delta``  -- an upper bound on ``|N_G(u) ∪ {u}|`` over all ``u``, and
* ``Delta'`` -- an upper bound on ``|N_G'(u) ∪ {u}|`` over all ``u``.

Vertices are arbitrary hashable identifiers (the examples and generators use
consecutive integers).  Edges are stored as frozensets of two vertices so that
``{u, v}`` and ``{v, u}`` are the same edge.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

Vertex = Hashable
Edge = FrozenSet[Vertex]


class TopologyIndex:
    """An integer-indexed, read-only view of a :class:`DualGraph`.

    The simulator's hot path cannot afford per-round hashing of arbitrary
    vertex identifiers and frozenset edges, so this structure maps the graph
    onto dense integer indices once, at construction time:

    * ``vertices[i]`` is the vertex with index ``i`` (indices are assigned in
      ``sorted(..., key=repr)`` order so they are stable across runs and match
      the ordering used by the process factories);
    * the reliable adjacency of ``G`` is stored CSR-style: the neighbors of
      vertex index ``i`` are ``g_indices[g_indptr[i]:g_indptr[i+1]]`` (also
      exposed pre-sliced as ``g_neighbors[i]`` for tight loops);
    * every unreliable edge of ``E' \\ E`` gets a dense *edge id*; the
      endpoints of edge id ``e`` are ``(unreliable_u[e], unreliable_v[e])``.

    Link schedulers use the edge ids to describe per-round inclusion deltas
    (:meth:`repro.dualgraph.adversary.LinkScheduler.unreliable_edge_ids_for_round`)
    without materializing frozensets, and the engine uses the CSR arrays to
    resolve receptions transmitter-centrically.

    Instances are built via :meth:`DualGraph.topology_index`, which caches the
    index and invalidates it when edges are added.
    """

    __slots__ = (
        "vertices",
        "index_of",
        "g_indptr",
        "g_indices",
        "g_neighbors",
        "unreliable_edge_list",
        "unreliable_id_of",
        "unreliable_u",
        "unreliable_v",
        "unreliable_adjacency",
        "unreliable_incident_ids",
        "unreliable_neighbor_by_eid",
        "_fingerprint",
    )

    def __init__(self, graph: "DualGraph") -> None:
        self.vertices: Tuple[Vertex, ...] = tuple(sorted(graph._vertices, key=repr))
        self.index_of: Dict[Vertex, int] = {v: i for i, v in enumerate(self.vertices)}

        indptr: List[int] = [0]
        indices: List[int] = []
        neighbors: List[Tuple[int, ...]] = []
        for vertex in self.vertices:
            row = sorted(self.index_of[nb] for nb in graph._g_adj[vertex])
            indices.extend(row)
            indptr.append(len(indices))
            neighbors.append(tuple(row))
        self.g_indptr: Tuple[int, ...] = tuple(indptr)
        self.g_indices: Tuple[int, ...] = tuple(indices)
        self.g_neighbors: Tuple[Tuple[int, ...], ...] = tuple(neighbors)

        def edge_key(edge: Edge) -> Tuple[int, int]:
            a, b = sorted(self.index_of[v] for v in edge)
            return a, b

        self.unreliable_edge_list: Tuple[Edge, ...] = tuple(
            sorted(graph._unreliable_extra, key=edge_key)
        )
        self.unreliable_id_of: Dict[Edge, int] = {
            edge: eid for eid, edge in enumerate(self.unreliable_edge_list)
        }
        endpoint_u: List[int] = []
        endpoint_v: List[int] = []
        u_adj: List[List[Tuple[int, int]]] = [[] for _ in self.vertices]
        for eid, edge in enumerate(self.unreliable_edge_list):
            a, b = edge_key(edge)
            endpoint_u.append(a)
            endpoint_v.append(b)
            u_adj[a].append((b, eid))
            u_adj[b].append((a, eid))
        self.unreliable_u: Tuple[int, ...] = tuple(endpoint_u)
        self.unreliable_v: Tuple[int, ...] = tuple(endpoint_v)
        # Per-vertex (neighbor index, edge id) pairs over E' \ E: the engine
        # walks exactly the unreliable edges incident to each transmitter.
        self.unreliable_adjacency: Tuple[Tuple[Tuple[int, int], ...], ...] = tuple(
            tuple(row) for row in u_adj
        )
        # The same incidence split into the two flat views the vectorized
        # resolver consumes: a frozenset of incident edge ids per vertex (for
        # C-level intersection with a round's scheduled-edge-id set) and an
        # eid -> other-endpoint map per vertex.  Rows are in ascending edge-id
        # order, matching ``unreliable_adjacency``.
        self.unreliable_incident_ids: Tuple[FrozenSet[int], ...] = tuple(
            frozenset(eid for _, eid in row) for row in u_adj
        )
        self.unreliable_neighbor_by_eid: Tuple[Dict[int, int], ...] = tuple(
            {eid: j for j, eid in row} for row in u_adj
        )
        self._fingerprint: Optional[str] = None

    @property
    def n(self) -> int:
        return len(self.vertices)

    @property
    def fingerprint(self) -> str:
        """A structural hash of the indexed topology (hex digest, cached).

        Two dual graphs that index identically -- same vertex reprs in the
        same order, same reliable CSR arrays, same unreliable edge endpoint
        arrays -- share a fingerprint, even when they are distinct objects
        built independently (e.g. one per sweep trial).  The
        :class:`~repro.dualgraph.adversary.SchedulerDeltaCache` keys on it so
        per-round edge-id deltas computed in one trial are valid in every
        other trial over a structurally identical network.
        """
        if self._fingerprint is None:
            payload = "|".join(
                (
                    repr(self.vertices),
                    repr(self.g_indptr),
                    repr(self.g_indices),
                    repr(self.unreliable_u),
                    repr(self.unreliable_v),
                )
            )
            self._fingerprint = hashlib.sha256(payload.encode()).hexdigest()
        return self._fingerprint

    @property
    def num_unreliable_edges(self) -> int:
        return len(self.unreliable_edge_list)

    def edge_ids(self, edges: Iterable[Edge]) -> Tuple[int, ...]:
        """Map unreliable edges to their dense ids (unknown edges are skipped)."""
        id_of = self.unreliable_id_of
        return tuple(id_of[e] for e in edges if e in id_of)

    def __repr__(self) -> str:
        return (
            f"TopologyIndex(n={self.n}, reliable_entries={len(self.g_indices) // 2}, "
            f"unreliable_edges={self.num_unreliable_edges})"
        )


def normalize_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical undirected edge ``{u, v}``.

    Raises
    ------
    ValueError
        If ``u == v`` (the model has no self loops).
    """
    if u == v:
        raise ValueError(f"self loops are not allowed (vertex {u!r})")
    return frozenset((u, v))


class DualGraph:
    """A dual graph ``(G, G')`` with ``G = (V, E)`` and ``G' = (V, E')``.

    Parameters
    ----------
    vertices:
        Iterable of vertex identifiers.
    reliable_edges:
        Iterable of 2-tuples (or frozensets) describing the edges of ``G``.
    unreliable_edges:
        Iterable of 2-tuples describing the edges of ``E' \\ E`` -- that is,
        only the *extra* edges of ``G'``.  It is not an error to repeat a
        reliable edge here; it is silently ignored so callers can pass the
        full ``E'`` if that is more convenient.

    Notes
    -----
    The paper requires ``E ⊆ E'``.  This class maintains the invariant
    automatically: ``E'`` is represented as the union of ``E`` and the extra
    unreliable edges.
    """

    def __init__(
        self,
        vertices: Iterable[Vertex],
        reliable_edges: Iterable[Tuple[Vertex, Vertex]] = (),
        unreliable_edges: Iterable[Tuple[Vertex, Vertex]] = (),
    ) -> None:
        self._vertices: Set[Vertex] = set(vertices)
        if not self._vertices:
            raise ValueError("a dual graph needs at least one vertex")

        self._reliable: Set[Edge] = set()
        self._unreliable_extra: Set[Edge] = set()
        self._g_adj: Dict[Vertex, Set[Vertex]] = {v: set() for v in self._vertices}
        self._gprime_adj: Dict[Vertex, Set[Vertex]] = {v: set() for v in self._vertices}
        self._topology_index: Optional[TopologyIndex] = None
        self._topology_version = 0

        for edge in reliable_edges:
            self.add_reliable_edge(*self._edge_endpoints(edge))
        for edge in unreliable_edges:
            self.add_unreliable_edge(*self._edge_endpoints(edge))

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _edge_endpoints(edge) -> Tuple[Vertex, Vertex]:
        endpoints = tuple(edge)
        if len(endpoints) != 2:
            raise ValueError(f"an edge needs exactly two endpoints, got {edge!r}")
        return endpoints[0], endpoints[1]

    def _check_vertex(self, u: Vertex) -> None:
        if u not in self._vertices:
            raise KeyError(f"vertex {u!r} is not part of this dual graph")

    def add_reliable_edge(self, u: Vertex, v: Vertex) -> None:
        """Add ``{u, v}`` to ``E`` (and therefore also to ``E'``)."""
        self._check_vertex(u)
        self._check_vertex(v)
        edge = normalize_edge(u, v)
        self._reliable.add(edge)
        self._unreliable_extra.discard(edge)
        self._g_adj[u].add(v)
        self._g_adj[v].add(u)
        self._gprime_adj[u].add(v)
        self._gprime_adj[v].add(u)
        self._invalidate_index()

    def add_unreliable_edge(self, u: Vertex, v: Vertex) -> None:
        """Add ``{u, v}`` to ``E' \\ E`` (ignored if it is already reliable)."""
        self._check_vertex(u)
        self._check_vertex(v)
        edge = normalize_edge(u, v)
        if edge in self._reliable:
            return
        self._unreliable_extra.add(edge)
        self._gprime_adj[u].add(v)
        self._gprime_adj[v].add(u)
        self._invalidate_index()

    def _invalidate_index(self) -> None:
        self._topology_index = None
        self._topology_version += 1

    def topology_index(self) -> TopologyIndex:
        """The cached integer-indexed (CSR) view of this graph.

        This is the entry point of the engine's fast path: the returned
        :class:`TopologyIndex` maps vertices to dense integers (stable
        ``sorted(..., key=repr)`` order), stores the reliable adjacency of
        ``G`` CSR-style, and assigns every edge of ``E' \\ E`` a dense *edge
        id* that link schedulers use to describe per-round inclusion deltas
        (:meth:`~repro.dualgraph.adversary.LinkScheduler.unreliable_edge_ids_for_round`).

        Contract: the index is immutable and cached; it is rebuilt lazily
        after any edge mutation, so callers must not hold on to one across
        mutations -- re-call this method, or compare :attr:`topology_version`
        (every consumer that memoizes by edge id keys its memo on that
        version).  Building is O(V + E log E); every subsequent call is a
        cache hit until the graph changes.
        """
        if self._topology_index is None:
            self._topology_index = TopologyIndex(self)
        return self._topology_index

    @property
    def topology_version(self) -> int:
        """Bumped on every edge mutation; keys scheduler-side memoization."""
        return self._topology_version

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> FrozenSet[Vertex]:
        """The vertex set ``V`` (shared by ``G`` and ``G'``)."""
        return frozenset(self._vertices)

    @property
    def n(self) -> int:
        """``|V|`` -- available to the *analysis*, never to the processes."""
        return len(self._vertices)

    @property
    def reliable_edges(self) -> FrozenSet[Edge]:
        """The edge set ``E`` of the reliable graph ``G``."""
        return frozenset(self._reliable)

    @property
    def unreliable_edges(self) -> FrozenSet[Edge]:
        """The edge set ``E' \\ E``: edges present only when scheduled."""
        return frozenset(self._unreliable_extra)

    @property
    def all_edges(self) -> FrozenSet[Edge]:
        """The edge set ``E'`` of ``G'`` (reliable plus unreliable)."""
        return frozenset(self._reliable | self._unreliable_extra)

    def has_vertex(self, u: Vertex) -> bool:
        """True iff ``u`` is a vertex of this dual graph."""
        return u in self._vertices

    def has_reliable_edge(self, u: Vertex, v: Vertex) -> bool:
        """True iff ``{u, v}`` is a reliable edge (an element of ``E``)."""
        return normalize_edge(u, v) in self._reliable

    def has_unreliable_edge(self, u: Vertex, v: Vertex) -> bool:
        """True iff ``{u, v}`` is an unreliable edge (in ``E' \\ E``)."""
        return normalize_edge(u, v) in self._unreliable_extra

    def has_any_edge(self, u: Vertex, v: Vertex) -> bool:
        """True iff ``{u, v}`` is an edge of ``G'`` (reliable or unreliable)."""
        edge = normalize_edge(u, v)
        return edge in self._reliable or edge in self._unreliable_extra

    # ------------------------------------------------------------------
    # neighborhoods
    # ------------------------------------------------------------------
    def reliable_neighbors(self, u: Vertex) -> FrozenSet[Vertex]:
        """``N_G(u)``: the reliable neighbors of ``u``, excluding ``u``."""
        self._check_vertex(u)
        return frozenset(self._g_adj[u])

    def potential_neighbors(self, u: Vertex) -> FrozenSet[Vertex]:
        """``N_G'(u)``: every vertex that may ever be adjacent to ``u``."""
        self._check_vertex(u)
        return frozenset(self._gprime_adj[u])

    def closed_reliable_neighborhood(self, u: Vertex) -> FrozenSet[Vertex]:
        """``N_G(u) ∪ {u}``."""
        return self.reliable_neighbors(u) | {u}

    def closed_potential_neighborhood(self, u: Vertex) -> FrozenSet[Vertex]:
        """``N_G'(u) ∪ {u}``."""
        return self.potential_neighbors(u) | {u}

    def reliable_neighbors_of_set(self, vertices: Iterable[Vertex]) -> FrozenSet[Vertex]:
        """``N_G(S)`` for a set ``S``: union of reliable neighborhoods of ``S``."""
        result: Set[Vertex] = set()
        for v in vertices:
            result |= self._g_adj[v]
        return frozenset(result)

    # ------------------------------------------------------------------
    # degree bounds
    # ------------------------------------------------------------------
    @property
    def max_reliable_degree(self) -> int:
        """``Δ`` -- the maximum of ``|N_G(u) ∪ {u}|`` over all vertices."""
        return max(len(self._g_adj[u]) + 1 for u in self._vertices)

    @property
    def max_potential_degree(self) -> int:
        """``Δ'`` -- the maximum of ``|N_G'(u) ∪ {u}|`` over all vertices."""
        return max(len(self._gprime_adj[u]) + 1 for u in self._vertices)

    def degree_bounds(self) -> Tuple[int, int]:
        """Return ``(Δ, Δ')`` as a pair."""
        return self.max_reliable_degree, self.max_potential_degree

    # ------------------------------------------------------------------
    # structural queries used by the analysis
    # ------------------------------------------------------------------
    def reliable_hop_distance(self, source: Vertex, target: Vertex) -> Optional[int]:
        """Hop distance between two vertices in ``G`` (None if disconnected)."""
        self._check_vertex(source)
        self._check_vertex(target)
        if source == target:
            return 0
        frontier = [source]
        seen = {source}
        distance = 0
        while frontier:
            distance += 1
            next_frontier: List[Vertex] = []
            for u in frontier:
                for v in self._g_adj[u]:
                    if v in seen:
                        continue
                    if v == target:
                        return distance
                    seen.add(v)
                    next_frontier.append(v)
            frontier = next_frontier
        return None

    def reliable_eccentricity(self, source: Vertex) -> int:
        """Maximum hop distance in ``G`` from ``source`` to any reachable vertex."""
        self._check_vertex(source)
        frontier = [source]
        seen = {source}
        distance = 0
        while frontier:
            next_frontier: List[Vertex] = []
            for u in frontier:
                for v in self._g_adj[u]:
                    if v not in seen:
                        seen.add(v)
                        next_frontier.append(v)
            if next_frontier:
                distance += 1
            frontier = next_frontier
        return distance

    def is_reliably_connected(self) -> bool:
        """True iff ``G`` is connected."""
        start = next(iter(self._vertices))
        frontier = [start]
        seen = {start}
        while frontier:
            u = frontier.pop()
            for v in self._g_adj[u]:
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return len(seen) == len(self._vertices)

    def validate(self) -> None:
        """Check internal invariants; raises ``AssertionError`` on corruption.

        Used by property-based tests: after arbitrary construction sequences
        the adjacency maps and edge sets must stay mutually consistent and
        ``E ⊆ E'`` must hold.
        """
        for edge in self._reliable:
            assert edge not in self._unreliable_extra, "E and E'\\E must be disjoint sets"
            u, v = tuple(edge)
            assert v in self._g_adj[u] and u in self._g_adj[v]
            assert v in self._gprime_adj[u] and u in self._gprime_adj[v]
        for edge in self._unreliable_extra:
            u, v = tuple(edge)
            assert v not in self._g_adj[u] and u not in self._g_adj[v]
            assert v in self._gprime_adj[u] and u in self._gprime_adj[v]
        for u in self._vertices:
            assert self._g_adj[u] <= self._gprime_adj[u], "N_G(u) must be within N_G'(u)"

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __contains__(self, u: Vertex) -> bool:
        return u in self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def __repr__(self) -> str:
        return (
            f"DualGraph(n={self.n}, reliable_edges={len(self._reliable)}, "
            f"unreliable_edges={len(self._unreliable_extra)}, "
            f"Delta={self.max_reliable_degree}, DeltaPrime={self.max_potential_degree})"
        )
