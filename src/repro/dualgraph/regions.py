"""Region partitions of the plane (Appendix A.1).

The seed agreement analysis partitions the Euclidean plane into convex regions
of diameter at most 1.  Lemma A.1 instantiates the partition as a uniform grid
of axis-aligned squares with side 1/2 (so each square has diameter
``sqrt(2)/2 <= 1``), and shows the pair ``(R, r)`` is *f-bounded* with
``f(h) = c1 * r^2 * h^2``.

This module provides:

* :class:`GridRegionPartition` -- the half-unit grid partition, mapping points
  (and embedded vertices) to region indices.
* :class:`RegionGraph` -- the graph ``G_{R,r}`` over the non-empty regions of
  an embedded network, with an edge between two regions whenever they contain
  points at distance at most ``r``; used to verify f-boundedness empirically
  and to compute the "goodness radius" arguments of Appendix B in tests.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Set, Tuple

from repro.dualgraph.geometric import Embedding, Point
from repro.dualgraph.graph import Vertex

RegionIndex = Tuple[int, int]


class GridRegionPartition:
    """Uniform grid partition of the plane into squares of a given side.

    The default side of 1/2 matches Lemma A.1: every region has diameter at
    most 1, so all vertices embedded in one region are mutual reliable
    neighbors in any r-geographic dual graph.
    """

    def __init__(self, side: float = 0.5) -> None:
        if side <= 0:
            raise ValueError(f"the region side must be positive, got {side}")
        if side > 1.0 / math.sqrt(2.0) + 1e-12:
            raise ValueError(
                "the region side must be at most 1/sqrt(2) so that region "
                f"diameter stays <= 1, got {side}"
            )
        self._side = float(side)

    @property
    def side(self) -> float:
        return self._side

    def region_of_point(self, point: Point) -> RegionIndex:
        """Map a point to the index ``(i, j)`` of the grid square containing it.

        Square ``(i, j)`` covers ``[i*side, (i+1)*side) x [j*side, (j+1)*side)``;
        the half-open convention plays the role of the boundary bookkeeping in
        Lemma A.1 (each point belongs to exactly one region).
        """
        x, y = point
        return (math.floor(x / self._side), math.floor(y / self._side))

    def region_of_vertex(self, embedding: Embedding, u: Vertex) -> RegionIndex:
        """Region of an embedded vertex."""
        return self.region_of_point(embedding.position(u))

    def assign_vertices(self, embedding: Embedding) -> Dict[RegionIndex, FrozenSet[Vertex]]:
        """Group embedded vertices by region; only non-empty regions appear."""
        buckets: Dict[RegionIndex, Set[Vertex]] = {}
        for u, point in embedding.items():
            buckets.setdefault(self.region_of_point(point), set()).add(u)
        return {idx: frozenset(vs) for idx, vs in buckets.items()}

    def max_region_diameter(self) -> float:
        """The diameter of a single region (the square's diagonal)."""
        return self._side * math.sqrt(2.0)

    def region_center(self, index: RegionIndex) -> Point:
        """The center point of a region, for plotting and distance estimates."""
        i, j = index
        return ((i + 0.5) * self._side, (j + 0.5) * self._side)

    def min_distance_between(self, a: RegionIndex, b: RegionIndex) -> float:
        """Minimum Euclidean distance between the closed squares ``a`` and ``b``."""
        ax0, ay0 = a[0] * self._side, a[1] * self._side
        bx0, by0 = b[0] * self._side, b[1] * self._side
        ax1, ay1 = ax0 + self._side, ay0 + self._side
        bx1, by1 = bx0 + self._side, by0 + self._side
        dx = max(bx0 - ax1, ax0 - bx1, 0.0)
        dy = max(by0 - ay1, ay0 - by1, 0.0)
        return math.hypot(dx, dy)

    def neighboring_regions(self, index: RegionIndex, r: float) -> List[RegionIndex]:
        """All region indices (other than ``index``) within distance ``r``.

        These are exactly the potential neighbors of ``index`` in the region
        graph ``G_{R,r}``, regardless of which regions are occupied.
        """
        reach = int(math.ceil(r / self._side)) + 1
        i, j = index
        result: List[RegionIndex] = []
        for di in range(-reach, reach + 1):
            for dj in range(-reach, reach + 1):
                if di == 0 and dj == 0:
                    continue
                other = (i + di, j + dj)
                if self.min_distance_between(index, other) <= r:
                    result.append(other)
        return result

    def f_bound_constant(self, r: float) -> float:
        """An explicit constant ``c1`` such that ``f(h) = c1 * r^2 * h^2`` holds.

        For the half-unit grid, the number of regions within ``h`` hops of a
        region in ``G_{R,r}`` is at most ``(2h * ceil(r/side) + 1)^2``; with
        ``side = 1/2`` this is at most ``(4hr + 1)^2 <= 25 r^2 h^2`` for
        ``h, r >= 1``.  We return that 25 scaled to the configured side.
        """
        per_hop = 2 * math.ceil(r / self._side) + 1
        return float(per_hop * per_hop) / max(r * r, 1.0)

    def __repr__(self) -> str:
        return f"GridRegionPartition(side={self._side})"


class RegionGraph:
    """The region graph ``G_{R,r}`` restricted to occupied regions.

    Vertices are the regions that contain at least one embedded network
    vertex.  Two regions are adjacent when they contain embedded points at
    distance at most ``r``.  (Using the occupied points rather than the full
    squares gives a subgraph of the Appendix A.1 graph, which is what the
    analysis actually interacts with.)
    """

    def __init__(
        self,
        partition: GridRegionPartition,
        embedding: Embedding,
        r: float,
    ) -> None:
        if r < 1:
            raise ValueError(f"the r-geographic parameter must satisfy r >= 1, got {r}")
        self._partition = partition
        self._embedding = embedding
        self._r = float(r)
        self._members = partition.assign_vertices(embedding)
        self._adj: Dict[RegionIndex, Set[RegionIndex]] = {
            idx: set() for idx in self._members
        }
        occupied = list(self._members)
        for i, a in enumerate(occupied):
            for b in occupied[i + 1 :]:
                if self._regions_close(a, b):
                    self._adj[a].add(b)
                    self._adj[b].add(a)

    def _regions_close(self, a: RegionIndex, b: RegionIndex) -> bool:
        if self._partition.min_distance_between(a, b) > self._r:
            return False
        for u in self._members[a]:
            pu = self._embedding.position(u)
            for v in self._members[b]:
                if math.hypot(pu[0] - self._embedding.position(v)[0],
                              pu[1] - self._embedding.position(v)[1]) <= self._r:
                    return True
        return False

    @property
    def r(self) -> float:
        return self._r

    @property
    def regions(self) -> FrozenSet[RegionIndex]:
        """The occupied regions."""
        return frozenset(self._members)

    def members(self, index: RegionIndex) -> FrozenSet[Vertex]:
        """The network vertices embedded in a region."""
        return self._members[index]

    def region_of(self, u: Vertex) -> RegionIndex:
        """The region containing vertex ``u``."""
        return self._partition.region_of_vertex(self._embedding, u)

    def neighbors(self, index: RegionIndex) -> FrozenSet[RegionIndex]:
        """Adjacent occupied regions in ``G_{R,r}``."""
        return frozenset(self._adj[index])

    def regions_within_hops(self, index: RegionIndex, hops: int) -> FrozenSet[RegionIndex]:
        """All occupied regions within ``hops`` hops of ``index`` (inclusive)."""
        if index not in self._adj:
            raise KeyError(f"region {index!r} is not occupied")
        seen: Set[RegionIndex] = {index}
        frontier = [index]
        for _ in range(hops):
            next_frontier: List[RegionIndex] = []
            for a in frontier:
                for b in self._adj[a]:
                    if b not in seen:
                        seen.add(b)
                        next_frontier.append(b)
            frontier = next_frontier
            if not frontier:
                break
        return frozenset(seen)

    def vertices_within_hops(self, index: RegionIndex, hops: int) -> FrozenSet[Vertex]:
        """All network vertices embedded in regions within ``hops`` of ``index``."""
        result: Set[Vertex] = set()
        for region in self.regions_within_hops(index, hops):
            result |= self._members[region]
        return frozenset(result)

    def check_f_bounded(self, f_constant: float, max_hops: int = 3) -> bool:
        """Empirically check the f-boundedness condition of Appendix A.1.

        Verifies that, for every occupied region and ``h <= max_hops``, the
        number of occupied regions within ``h`` hops is at most
        ``f_constant * r^2 * max(h, 1)^2``.
        """
        for region in self._members:
            for h in range(0, max_hops + 1):
                count = len(self.regions_within_hops(region, h))
                bound = f_constant * self._r * self._r * max(h, 1) ** 2
                if count > bound:
                    return False
        return True

    def max_vertices_per_region(self) -> int:
        """The largest number of vertices in a single region.

        By Lemma A.3's argument this is at most ``Δ`` whenever the underlying
        dual graph is r-geographic (all co-region vertices are G-neighbors).
        """
        return max(len(vs) for vs in self._members.values())

    def __repr__(self) -> str:
        return f"RegionGraph(regions={len(self._members)}, r={self._r})"
