"""Shared machinery for the baseline broadcast processes.

Every baseline follows the same outer shape as LBAlg -- accept ``bcast``
inputs, stay *active* for a strategy-specific number of rounds while
transmitting according to its schedule, output ``ack`` when done, and output
``recv`` for every new message heard while listening -- so that traces from
baselines and from LBAlg are directly comparable.  Only the per-round
transmission rule differs, which subclasses supply via
:meth:`BaselineBroadcastProcess.transmission_probability` or by overriding
:meth:`BaselineBroadcastProcess.should_transmit`.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Set, Tuple

from repro.core.events import AckOutput, RecvOutput
from repro.core.local_broadcast import DataFrame
from repro.core.messages import Message
from repro.simulation.process import Process, ProcessContext


class BaselineBroadcastProcess(Process):
    """Common skeleton of the fixed-schedule baselines.

    Parameters
    ----------
    ctx:
        The process context.
    active_rounds:
        How many rounds a node stays in the active (sending) state per
        message before acknowledging.
    """

    def __init__(self, ctx: ProcessContext, active_rounds: int) -> None:
        super().__init__(ctx)
        if active_rounds < 1:
            raise ValueError("active_rounds must be at least 1")
        self.active_rounds = int(active_rounds)
        self._current_message: Optional[Message] = None
        self._rounds_active = 0
        self._received_ids: Set[Tuple[Hashable, int]] = set()

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def is_active(self) -> bool:
        """True while the node has an unacknowledged message."""
        return self._current_message is not None

    @property
    def current_message(self) -> Optional[Message]:
        return self._current_message

    @property
    def rounds_active(self) -> int:
        """Rounds the current message has been active so far."""
        return self._rounds_active

    # ------------------------------------------------------------------
    # strategy hooks
    # ------------------------------------------------------------------
    def transmission_probability(self, active_round_index: int) -> float:
        """The broadcast probability for the ``active_round_index``-th active round.

        ``active_round_index`` is 1-based and counts only rounds in which the
        node has been active with the current message.  Subclasses implement
        their schedule here (Decay's cycle, the uniform probability, ...).
        """
        raise NotImplementedError

    def should_transmit(self, active_round_index: int) -> bool:
        """Whether to transmit this active round (default: flip the schedule's coin)."""
        probability = self.transmission_probability(active_round_index)
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self.rng.random() < probability

    # ------------------------------------------------------------------
    # Process hooks
    # ------------------------------------------------------------------
    def on_input(self, round_number: int, inp: Any) -> None:
        if not isinstance(inp, Message):
            raise TypeError(
                f"baseline processes accept Message inputs only, got {type(inp).__name__}"
            )
        if self._current_message is not None:
            raise RuntimeError(
                f"vertex {self.vertex!r} received a bcast input while busy; the "
                "environment violates well-formedness"
            )
        self._current_message = inp
        self._rounds_active = 0

    def transmit(self, round_number: int) -> Optional[DataFrame]:
        if self._current_message is None:
            return None
        self._rounds_active += 1
        if self.should_transmit(self._rounds_active):
            return DataFrame(message=self._current_message)
        return None

    def on_receive(self, round_number: int, frame: Optional[Any]) -> None:
        if isinstance(frame, DataFrame):
            message = frame.message
            if message.message_id not in self._received_ids:
                self._received_ids.add(message.message_id)
                self.emit(
                    RecvOutput(vertex=self.vertex, message=message, round_number=round_number)
                )
        if self._current_message is not None and self._rounds_active >= self.active_rounds:
            message = self._current_message
            self._current_message = None
            self._rounds_active = 0
            self.emit(
                AckOutput(vertex=self.vertex, message=message, round_number=round_number)
            )
