"""Construction helpers for baseline process populations."""

from __future__ import annotations

import random
from typing import Dict, Hashable, Optional

from repro.baselines.decay import DecayProcess
from repro.baselines.round_robin import RoundRobinProcess
from repro.baselines.uniform import UniformProcess
from repro.dualgraph.graph import DualGraph
from repro.simulation.process import Process, ProcessContext

_KINDS = ("decay", "uniform", "round_robin")


def make_baseline_processes(
    graph: DualGraph,
    kind: str,
    rng: random.Random,
    r: float = 2.0,
    **kwargs,
) -> Dict[Hashable, Process]:
    """Build one baseline process of the requested kind per vertex.

    Parameters
    ----------
    kind:
        ``"decay"``, ``"uniform"`` or ``"round_robin"``.
    kwargs:
        Forwarded to the chosen process class (e.g. ``num_cycles`` for Decay,
        ``probability`` / ``active_rounds`` for uniform, ``frame_size`` /
        ``num_frames`` for round robin).
    """
    if kind not in _KINDS:
        raise ValueError(f"unknown baseline kind {kind!r}; expected one of {_KINDS}")
    delta, delta_prime = graph.degree_bounds()
    processes: Dict[Hashable, Process] = {}
    for vertex in sorted(graph.vertices, key=repr):
        ctx = ProcessContext(
            vertex=vertex,
            delta=delta,
            delta_prime=delta_prime,
            r=r,
            rng=random.Random(rng.getrandbits(64)),
        )
        if kind == "decay":
            processes[vertex] = DecayProcess(ctx, **kwargs)
        elif kind == "uniform":
            processes[vertex] = UniformProcess(ctx, **kwargs)
        else:
            processes[vertex] = RoundRobinProcess(ctx, **kwargs)
    return processes
