"""Uniform fixed-probability broadcast.

The simplest fixed strategy: while active, transmit with one constant
probability ``p`` every round.  With ``p = Θ(1/Δ)`` this is the textbook
symmetry-breaking strategy for known contention; like Decay it is oblivious to
the link scheduler and therefore a useful baseline for experiment E6 and the
lower-bound context experiment E7.
"""

from __future__ import annotations

from repro.baselines.base import BaselineBroadcastProcess
from repro.simulation.process import ProcessContext


class UniformProcess(BaselineBroadcastProcess):
    """A node broadcasting with a single fixed probability while active.

    Parameters
    ----------
    probability:
        The per-round broadcast probability; defaults to ``1/Δ``.
    active_rounds:
        Rounds to stay active per message before acknowledging; defaults to
        ``4 * Δ`` (enough for the expected ``Δ`` successes needed in a clique
        plus slack).
    """

    def __init__(
        self,
        ctx: ProcessContext,
        probability: float = None,
        active_rounds: int = None,
    ) -> None:
        if probability is None:
            probability = 1.0 / max(ctx.delta, 1)
        if not 0.0 < probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1], got {probability}")
        if active_rounds is None:
            active_rounds = 4 * max(ctx.delta, 1)
        super().__init__(ctx, active_rounds=active_rounds)
        self.probability = float(probability)

    def transmission_probability(self, active_round_index: int) -> float:
        return self.probability
