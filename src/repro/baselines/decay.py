"""The Decay broadcast strategy (Bar-Yehuda, Goldreich, Itai 1992).

Decay is the canonical fixed-schedule strategy referenced in the paper's
introduction: an active node cycles deterministically through geometrically
decreasing broadcast probabilities ``1/2, 1/4, ..., 1/Δ``.  The intuition is
that for each receiver, one of these probabilities matches the local
contention -- which works in the static radio model but is exactly what an
oblivious dual graph link scheduler can defeat by raising contention when the
schedule picks high probabilities and starving the receiver when it picks low
ones (see :class:`repro.dualgraph.adversary.AntiScheduleAdversary` and
experiment E6).
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.baselines.base import BaselineBroadcastProcess
from repro.simulation.process import ProcessContext


def decay_schedule(delta: int) -> List[float]:
    """The probability cycle ``[1/2, 1/4, ..., 1/2^{ceil(log2 Δ)}]``."""
    if delta < 1:
        raise ValueError("Delta must be at least 1")
    length = max(1, math.ceil(math.log2(max(delta, 2))))
    return [2.0 ** (-(i + 1)) for i in range(length)]


class DecayProcess(BaselineBroadcastProcess):
    """A node running Decay for local broadcast.

    Parameters
    ----------
    ctx:
        The process context; the schedule length is ``ceil(log2 Δ)``.
    num_cycles:
        How many full probability cycles to run per message before
        acknowledging.  The classic analysis uses ``O(log(1/ε))`` cycles to
        drive the per-receiver failure probability below ε (in the static
        model); experiments vary it.
    """

    def __init__(self, ctx: ProcessContext, num_cycles: int = 8) -> None:
        if num_cycles < 1:
            raise ValueError("num_cycles must be at least 1")
        self._schedule = decay_schedule(ctx.delta)
        super().__init__(ctx, active_rounds=num_cycles * len(self._schedule))
        self.num_cycles = int(num_cycles)

    @property
    def schedule(self) -> List[float]:
        """The per-round probability cycle used by this node."""
        return list(self._schedule)

    @property
    def cycle_length(self) -> int:
        return len(self._schedule)

    def transmission_probability(self, active_round_index: int) -> float:
        position = (active_round_index - 1) % len(self._schedule)
        return self._schedule[position]
