"""Baseline broadcast strategies used as comparison points.

The paper's introduction explains why *fixed* broadcast-probability schedules
are defeated by an oblivious link scheduler that inverts contention against
them, which is the motivation for LBAlg's seed-permuted schedule.  This
package implements the classic fixed strategies so the benchmarks can stage
that comparison:

* :class:`~repro.baselines.decay.DecayProcess` -- the Bar-Yehuda / Goldreich /
  Itai Decay protocol (geometrically decreasing probabilities on a fixed
  cycle).
* :class:`~repro.baselines.uniform.UniformProcess` -- a single fixed broadcast
  probability.
* :class:`~repro.baselines.round_robin.RoundRobinProcess` -- deterministic
  TDMA by process id (Clementi et al.'s round robin).

All three speak the same ``bcast/ack/recv`` event vocabulary as LBAlg, so
traces produced by any of them feed the same metrics and spec checkers.
"""

from repro.baselines.decay import DecayProcess
from repro.baselines.uniform import UniformProcess
from repro.baselines.round_robin import RoundRobinProcess
from repro.baselines.factory import make_baseline_processes

__all__ = [
    "DecayProcess",
    "UniformProcess",
    "RoundRobinProcess",
    "make_baseline_processes",
]
