"""Round robin (TDMA) broadcast.

Clementi, Monti and Silvestri showed round robin is optimal for fault-tolerant
broadcast in the worst case: give every process a private time slot and let it
transmit only there.  Without knowledge of the global id space a process
cannot get a collision-free slot, so this implementation hashes the process id
into a frame of ``frame_size`` slots (default ``Δ'``); slot collisions are
possible and simply show up as collisions on the air, which is part of what
the comparison experiments measure.
"""

from __future__ import annotations

import hashlib

from repro.baselines.base import BaselineBroadcastProcess
from repro.simulation.process import ProcessContext


class RoundRobinProcess(BaselineBroadcastProcess):
    """A node transmitting deterministically in its hashed TDMA slot.

    Parameters
    ----------
    frame_size:
        Number of slots per frame; defaults to ``Δ'``.
    num_frames:
        Frames to stay active per message before acknowledging.
    """

    def __init__(
        self,
        ctx: ProcessContext,
        frame_size: int = None,
        num_frames: int = 4,
    ) -> None:
        if frame_size is None:
            frame_size = max(ctx.delta_prime, 1)
        if frame_size < 1:
            raise ValueError("frame_size must be at least 1")
        if num_frames < 1:
            raise ValueError("num_frames must be at least 1")
        super().__init__(ctx, active_rounds=frame_size * num_frames)
        self.frame_size = int(frame_size)
        self.num_frames = int(num_frames)
        digest = hashlib.sha256(repr(ctx.process_id).encode()).digest()
        self.slot = int.from_bytes(digest[:8], "big") % self.frame_size

    def transmission_probability(self, active_round_index: int) -> float:
        # Unused: the decision is deterministic; see should_transmit.
        return 1.0 if self._in_slot(active_round_index) else 0.0

    def should_transmit(self, active_round_index: int) -> bool:
        return self._in_slot(active_round_index)

    def _in_slot(self, active_round_index: int) -> bool:
        return (active_round_index - 1) % self.frame_size == self.slot
