"""Analysis helpers: theoretical bounds, statistics, parameter sweeps.

* :mod:`repro.analysis.theory` -- closed-form versions of the paper's bounds
  (Theorem 3.1, Theorem 4.1, Lemma 4.2, and the lower-bound context of §1),
  used to plot/tabulate predicted shapes next to measured ones.
* :mod:`repro.analysis.stats` -- empirical error rates, Wilson confidence
  intervals, and small summary statistics used by the benchmark harnesses.
* :mod:`repro.analysis.sweep` -- a tiny parameter-sweep driver and table
  formatter so every benchmark prints its figure/table data the same way.
"""

from repro.analysis import theory
from repro.analysis.stats import (
    empirical_error_rate,
    mean,
    quantile,
    std,
    summarize,
    wilson_interval,
)
from repro.analysis.sweep import (
    ParallelSweepRunner,
    SweepResult,
    derive_point_seed,
    format_table,
    iter_grid_points,
    parallel_sweep,
    sweep,
)

__all__ = [
    "theory",
    "mean",
    "std",
    "quantile",
    "summarize",
    "empirical_error_rate",
    "wilson_interval",
    "sweep",
    "parallel_sweep",
    "ParallelSweepRunner",
    "iter_grid_points",
    "derive_point_seed",
    "SweepResult",
    "format_table",
]
