"""Small statistics helpers used by tests and benchmark harnesses.

The paper's guarantees are per-node probabilistic statements; the experiments
estimate them as empirical frequencies over repeated trials.  These helpers
keep that estimation (and its uncertainty) uniform across every benchmark.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (raises on empty input rather than returning NaN)."""
    values = list(values)
    if not values:
        raise ValueError("cannot take the mean of no values")
    return sum(values) / len(values)


def std(values: Sequence[float]) -> float:
    """Population standard deviation."""
    values = list(values)
    if not values:
        raise ValueError("cannot take the standard deviation of no values")
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def quantile(values: Sequence[float], q: float) -> float:
    """The q-quantile (0 <= q <= 1) by linear interpolation.

    Raises a clear :class:`ValueError` on empty input (rather than an
    ``IndexError`` from the sort/indexing below) and on q outside [0, 1].
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("cannot take a quantile of no values")
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return ordered[low]
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / std / min / median / p90 / max in one dictionary.

    Raises a clear :class:`ValueError` on empty input instead of letting the
    first inner helper fail with its own (less specific) message.
    """
    values = list(values)
    if not values:
        raise ValueError("cannot summarize no values")
    return {
        "count": float(len(values)),
        "mean": mean(values),
        "std": std(values),
        "min": min(values),
        "median": quantile(values, 0.5),
        "p90": quantile(values, 0.9),
        "max": max(values),
    }


def empirical_error_rate(failures: int, trials: int) -> float:
    """Failure frequency with input validation."""
    if trials < 1:
        raise ValueError("need at least one trial")
    if not 0 <= failures <= trials:
        raise ValueError("failures must be between 0 and trials")
    return failures / trials


def wilson_interval(failures: int, trials: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a failure probability.

    Far better behaved than the normal approximation when the observed count
    is 0 or small -- which is the common case here, since the experiments are
    designed so failures are rare.

    ``trials`` must be at least 1 and ``z`` strictly positive; both are
    validated up front so callers get a :class:`ValueError` instead of a
    ``ZeroDivisionError`` (``trials == 0``) or a silently inverted interval
    (``z <= 0``).
    """
    if trials < 1:
        raise ValueError(f"need at least one trial, got trials={trials}")
    if z <= 0:
        raise ValueError(f"z must be positive, got z={z}")
    if not 0 <= failures <= trials:
        raise ValueError("failures must be between 0 and trials")
    p_hat = failures / trials
    denominator = 1.0 + z * z / trials
    center = (p_hat + z * z / (2.0 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p_hat * (1.0 - p_hat) / trials + z * z / (4.0 * trials * trials))
        / denominator
    )
    return max(0.0, center - margin), min(1.0, center + margin)


def ratio_of_means(numerators: Sequence[float], denominators: Sequence[float]) -> float:
    """``mean(numerators) / mean(denominators)`` -- the speedup statistic used
    when comparing LBAlg against baselines."""
    denominator = mean(denominators)
    if denominator == 0:
        raise ValueError("the denominator mean is zero")
    return mean(numerators) / denominator
