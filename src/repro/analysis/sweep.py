"""Parameter sweeps and result tables.

Every benchmark harness has the same outer shape: iterate over a grid of
parameters (Δ, ε, scheduler, algorithm), run trials, collect a record per
grid point, and print a table whose rows mirror a figure's data series.  This
module factors that shape out so the benchmarks stay small and uniform.
"""

from __future__ import annotations

import hashlib
import itertools
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence


@dataclass
class SweepResult:
    """The collected records of one parameter sweep."""

    rows: List[Dict[str, Any]] = field(default_factory=list)

    def append(self, row: Mapping[str, Any]) -> None:
        self.rows.append(dict(row))

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        return [row[name] for row in self.rows]

    def where(self, **conditions: Any) -> "SweepResult":
        """Rows matching all the given column=value conditions."""
        selected = [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in conditions.items())
        ]
        return SweepResult(rows=selected)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


def iter_grid_points(grid: Mapping[str, Sequence[Any]]) -> Iterator[Dict[str, Any]]:
    """Yield the points of the Cartesian grid in canonical (row) order."""
    names = list(grid)
    for values in itertools.product(*(grid[name] for name in names)):
        yield dict(zip(names, values))


def sweep(
    grid: Mapping[str, Sequence[Any]],
    run: Callable[..., Mapping[str, Any]],
) -> SweepResult:
    """Run ``run(**point)`` for every point of the Cartesian grid.

    ``run`` returns a mapping of result columns; the sweep merges the grid
    point into the record so every row is self-describing.
    """
    result = SweepResult()
    for point in iter_grid_points(grid):
        record = dict(run(**point))
        merged = {**point, **record}
        result.append(merged)
    return result


def derive_point_seed(base_seed: int, point_index: int) -> int:
    """A stable 63-bit RNG seed for one grid point.

    Hash-derived (rather than ``base_seed + index``) so that sweeps with
    nearby base seeds do not share per-point seeds, and stable across runs,
    platforms, and worker scheduling order.
    """
    payload = f"{base_seed}|{point_index}".encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") >> 1


#: The seed policies :func:`derive_trial_seed` implements (shared with
#: ``repro.scenarios.spec.RunPolicy``, whose ``seed_policy`` field takes
#: exactly these values).
TRIAL_SEED_POLICIES = ("fixed", "sequential", "derived")


def derive_trial_seed(master_seed: int, trial_index: int, seed_policy: str = "derived") -> int:
    """THE per-trial seed derivation, shared by every execution path.

    This is the single documented helper behind
    :meth:`repro.scenarios.spec.RunPolicy.trial_seed`: serial ``run()``
    loops, ``run(jobs=...)`` worker pools, suite workers, shard partitions
    and the result store's cache keys all resolve trial ``i`` of a scenario
    through this function, so they provably draw identical seeds.

    Policies:

    * ``"fixed"`` -- every trial uses ``master_seed`` verbatim;
    * ``"sequential"`` -- trial ``i`` uses ``master_seed + i``;
    * ``"derived"`` -- trial ``i`` uses :func:`derive_point_seed`
      (SHA-derived, so nearby master seeds never share trial seeds).
    """
    if seed_policy == "fixed":
        return master_seed
    if seed_policy == "sequential":
        return master_seed + trial_index
    if seed_policy == "derived":
        return derive_point_seed(master_seed, trial_index)
    raise ValueError(
        f"seed_policy must be one of {TRIAL_SEED_POLICIES}, got {seed_policy!r}"
    )


#: Reserved ``common`` kwarg: a prebuilt ``{(delta_cache_key, round): ids}``
#: table (see :func:`repro.dualgraph.adversary.prebuild_scheduler_deltas`).
#: It is *not* passed to ``run``; instead each worker preloads its process-wide
#: :class:`~repro.dualgraph.adversary.SchedulerDeltaCache` with it before the
#: first grid point runs, so every scheduler the trials construct starts with
#: the sweep's per-round deltas already computed.
SCHEDULER_DELTA_TABLE_KWARG = "scheduler_delta_table"


def _preload_worker_deltas(delta_table: Mapping) -> None:
    """Process-pool initializer: preload the delta table once per worker."""
    from repro.dualgraph.adversary import preload_process_delta_cache

    preload_process_delta_cache(delta_table)


def _run_grid_point(
    run: Callable[..., Mapping[str, Any]],
    point: Dict[str, Any],
    seed_arg: Optional[str],
    seed: Optional[int],
    common: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Top-level worker target (must be picklable for the process pool)."""
    kwargs = dict(common) if common else {}
    delta_table = kwargs.pop(SCHEDULER_DELTA_TABLE_KWARG, None)
    if delta_table:
        # Normally stripped by ParallelSweepRunner.run (which ships the table
        # through the pool initializer, once per worker); handled here too so
        # direct callers get the same behavior.
        _preload_worker_deltas(delta_table)
    kwargs.update(point)
    if seed_arg is not None and seed is not None:
        kwargs[seed_arg] = seed
    record = dict(run(**kwargs))
    return {**point, **record}


class ParallelSweepRunner:
    """Run a parameter sweep's grid points on a process pool.

    Grid points are independent by construction (each ``run`` call builds its
    own networks and simulators), so the sweep parallelizes trivially; rows
    come back in the same canonical order that the serial :func:`sweep`
    produces, and the output is the same :class:`SweepResult`.

    Parameters
    ----------
    jobs:
        Worker process count; ``None`` means "all cores" (``os.cpu_count()``)
        and values below 2 mean "run serially in this process" (useful as a
        uniform call site behind a ``--jobs`` flag).  Serial runs accept any
        callable; actual pools need ``run`` to be picklable.
    base_seed:
        When given, each grid point receives a deterministic derived seed
        (:func:`derive_point_seed`) as the keyword argument named by
        ``seed_arg`` -- identical whether the sweep runs serially or on any
        number of workers.  When ``None`` (default), no seed is injected and
        the runner matches :func:`sweep` exactly.
    seed_arg:
        Name of the seed keyword argument injected into ``run``.

    Notes
    -----
    ``run`` must be picklable (a module-level function), as must every grid
    value and returned record -- the standard multiprocessing constraint.
    Fixed configuration shared by every grid point (engine selection, round
    budgets, trial counts) goes through :meth:`run`'s ``common`` mapping
    rather than ``functools.partial``, keeping the worker payload uniform
    and the configuration out of the result rows.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        base_seed: Optional[int] = None,
        seed_arg: str = "seed",
    ) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        self.jobs = max(1, int(jobs))
        self.base_seed = base_seed
        self.seed_arg = seed_arg

    def run(
        self,
        grid: Mapping[str, Sequence[Any]],
        run: Callable[..., Mapping[str, Any]],
        common: Optional[Mapping[str, Any]] = None,
        on_result: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> SweepResult:
        """Execute the sweep and return its rows in canonical grid order.

        ``common`` holds keyword arguments passed to ``run`` at *every* grid
        point (grid values win on collision).  It is how benchmarks thread
        fixed configuration -- round budgets, engine selection such as the
        simulator's ``fast_path`` / ``batch_path`` / ``vector_path`` flags --
        through the process pool without baking it into the grid or the
        result rows.

        One key is reserved: :data:`SCHEDULER_DELTA_TABLE_KWARG`
        (``"scheduler_delta_table"``).  Its value -- a prebuilt per-round
        delta table from
        :func:`repro.dualgraph.adversary.prebuild_scheduler_deltas` -- is
        stripped before ``run`` is called and instead preloaded into each
        worker's process-wide scheduler delta cache, so trials on every
        worker share the parent's precomputed schedules instead of re-hashing
        them per process.

        ``on_result``, when given, is called in the parent process with each
        completed row *in canonical grid order* (serial and pooled runs
        alike) before the row is appended to the result -- the hook suite
        checkpointing uses to persist progress incrementally: when the
        process dies mid-sweep, every row already handed to ``on_result``
        is a canonical-order prefix of the full sweep.
        """
        points = list(iter_grid_points(grid))
        seeds: List[Optional[int]] = [
            derive_point_seed(self.base_seed, i) if self.base_seed is not None else None
            for i in range(len(points))
        ]
        seed_arg = self.seed_arg if self.base_seed is not None else None
        common = dict(common) if common else None
        delta_table = common.pop(SCHEDULER_DELTA_TABLE_KWARG, None) if common else None

        result = SweepResult()
        if self.jobs <= 1 or len(points) <= 1:
            if delta_table:
                _preload_worker_deltas(delta_table)
            for point, seed in zip(points, seeds):
                row = _run_grid_point(run, point, seed_arg, seed, common)
                if on_result is not None:
                    on_result(row)
                result.append(row)
            return result

        workers = min(self.jobs, len(points))
        # The delta table rides in the pool initializer -- pickled once per
        # worker -- rather than in every grid point's common mapping.
        pool_kwargs: Dict[str, Any] = {"max_workers": workers}
        if delta_table:
            pool_kwargs["initializer"] = _preload_worker_deltas
            pool_kwargs["initargs"] = (delta_table,)
        with ProcessPoolExecutor(**pool_kwargs) as pool:
            futures = [
                pool.submit(_run_grid_point, run, point, seed_arg, seed, common)
                for point, seed in zip(points, seeds)
            ]
            try:
                for future in futures:
                    row = future.result()
                    if on_result is not None:
                        on_result(row)
                    result.append(row)
            except BaseException:
                # An on_result hook aborting the sweep (e.g. suite
                # cancellation) should not wait out the whole queue: drop
                # every not-yet-started grid point before the pool shutdown
                # joins the in-flight ones.
                for future in futures:
                    future.cancel()
                raise
        return result


def parallel_sweep(
    grid: Mapping[str, Sequence[Any]],
    run: Callable[..., Mapping[str, Any]],
    jobs: Optional[int] = None,
    base_seed: Optional[int] = None,
    common: Optional[Mapping[str, Any]] = None,
) -> SweepResult:
    """Convenience wrapper: ``ParallelSweepRunner(jobs, base_seed).run(grid, run)``."""
    return ParallelSweepRunner(jobs=jobs, base_seed=base_seed).run(grid, run, common=common)


def format_table(
    rows: Iterable[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.4g}",
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned text table (what the benchmarks print).

    Parameters
    ----------
    columns:
        Column order; defaults to the keys of the first row.
    float_format:
        Format applied to float values.
    title:
        Optional heading line.
    """
    rows = [dict(row) for row in rows]
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0])

    def render(value: Any) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    table = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), max(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in table
    )
    pieces = []
    if title:
        pieces.append(title)
    pieces.extend([header, separator, body])
    return "\n".join(pieces)
