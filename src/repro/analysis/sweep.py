"""Parameter sweeps and result tables.

Every benchmark harness has the same outer shape: iterate over a grid of
parameters (Δ, ε, scheduler, algorithm), run trials, collect a record per
grid point, and print a table whose rows mirror a figure's data series.  This
module factors that shape out so the benchmarks stay small and uniform.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence


@dataclass
class SweepResult:
    """The collected records of one parameter sweep."""

    rows: List[Dict[str, Any]] = field(default_factory=list)

    def append(self, row: Mapping[str, Any]) -> None:
        self.rows.append(dict(row))

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        return [row[name] for row in self.rows]

    def where(self, **conditions: Any) -> "SweepResult":
        """Rows matching all the given column=value conditions."""
        selected = [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in conditions.items())
        ]
        return SweepResult(rows=selected)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


def sweep(
    grid: Mapping[str, Sequence[Any]],
    run: Callable[..., Mapping[str, Any]],
) -> SweepResult:
    """Run ``run(**point)`` for every point of the Cartesian grid.

    ``run`` returns a mapping of result columns; the sweep merges the grid
    point into the record so every row is self-describing.
    """
    result = SweepResult()
    names = list(grid)
    for values in itertools.product(*(grid[name] for name in names)):
        point = dict(zip(names, values))
        record = dict(run(**point))
        merged = {**point, **record}
        result.append(merged)
    return result


def format_table(
    rows: Iterable[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.4g}",
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned text table (what the benchmarks print).

    Parameters
    ----------
    columns:
        Column order; defaults to the keys of the first row.
    float_format:
        Format applied to float values.
    title:
        Optional heading line.
    """
    rows = [dict(row) for row in rows]
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0])

    def render(value: Any) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    table = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), max(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in table
    )
    pieces = []
    if title:
        pieces.append(title)
    pieces.extend([header, separator, body])
    return "\n".join(pieces)
