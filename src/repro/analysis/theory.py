"""Closed-form versions of the paper's bounds.

These functions express the asymptotic statements of the paper as concrete
formulas (leading constants set to 1 unless the paper fixes them), so the
benchmark harnesses can print the *predicted* scaling shape next to the
*measured* one.  They are intentionally independent of the simulation
parameter machinery: they answer "what does the theorem say the dependence
on Δ, ε, r looks like", nothing more.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.constants import SeedConstants
from repro.core.params import theoretical_seed_error


def _log2(value: float) -> float:
    """``log2`` with a floor of 1, matching the paper's convention that logs never vanish."""
    return max(1.0, math.log2(max(value, 2.0)))


def _log_inv(epsilon: float) -> float:
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    return max(1.0, math.log2(1.0 / epsilon))


# ----------------------------------------------------------------------
# Theorem 3.1 -- seed agreement
# ----------------------------------------------------------------------
def seed_delta_bound(epsilon1: float, r: float = 2.0) -> float:
    """δ = O(r² log(1/ε1)): the seed-partition bound of Theorem 3.1."""
    return r * r * _log_inv(epsilon1)


def seed_runtime_bound(delta: int, epsilon1: float) -> float:
    """Running time O(log Δ · log²(1/ε1)) of Theorem 3.1, in rounds."""
    return _log2(delta) * _log_inv(epsilon1) ** 2


def seed_error_bound(
    epsilon1: float, delta: int, r: float = 2.0, constants: Optional[SeedConstants] = None
) -> float:
    """ε = O(r⁴ log⁴(Δ) ε1^{c^{r²}}): the Theorem 3.1 error bound."""
    return theoretical_seed_error(epsilon1, delta, r, constants)


# ----------------------------------------------------------------------
# Theorem 4.1 -- local broadcast
# ----------------------------------------------------------------------
def tprog_bound(delta: int, epsilon: float, r: float = 2.0) -> float:
    """t_prog = O(r² log Δ · log(r⁴ log⁴Δ / ε))."""
    inner = (r ** 4) * _log2(delta) ** 4 / epsilon
    return r * r * _log2(delta) * max(1.0, math.log2(inner))


def tack_bound(delta: int, epsilon: float, r: float = 2.0) -> float:
    """t_ack = O(r² Δ log(Δ/ε) log Δ log(r⁴ log⁴Δ/ε) / (1 − ε))."""
    return (
        delta
        * max(1.0, math.log2(delta / epsilon))
        * tprog_bound(delta, epsilon, r)
        / (1.0 - epsilon)
    )


# ----------------------------------------------------------------------
# Lemma 4.2 -- per-round receive probabilities
# ----------------------------------------------------------------------
def lemma42_receive_probability(
    delta: int, epsilon2: float, r: float = 2.0, c2: float = 1.0
) -> float:
    """p_u ≥ c2 / (r² log(1/ε2) log Δ): a receiver with an active G-neighbor
    hears *some* message in one body round with at least this probability."""
    return c2 / (r * r * _log_inv(epsilon2) * _log2(delta))


def lemma42_pairwise_probability(
    delta: int, delta_prime: int, epsilon2: float, r: float = 2.0, c2: float = 1.0
) -> float:
    """p_{u,v} ≥ p_u / Δ': the probability of hearing a *specific* active neighbor."""
    if delta_prime < 1:
        raise ValueError("Delta' must be at least 1")
    return lemma42_receive_probability(delta, epsilon2, r, c2) / delta_prime


# ----------------------------------------------------------------------
# §1 lower-bound context (near-optimality discussion)
# ----------------------------------------------------------------------
def progress_lower_bound(delta: int) -> float:
    """Ω(log Δ): any progress bound needs logarithmically many rounds, even
    with reliable links only (symmetry breaking among unknown contenders)."""
    return _log2(delta)


def ack_lower_bound(delta: int) -> float:
    """Ω(Δ): a receiver neighboring Δ broadcasters absorbs one message per
    round, so some broadcaster waits at least Δ rounds for its delivery."""
    return float(delta)


# ----------------------------------------------------------------------
# Decay baseline reference (Bar-Yehuda et al.)
# ----------------------------------------------------------------------
def decay_cycle_length(delta: int) -> int:
    """Length of one Decay probability cycle: ceil(log2 Δ)."""
    return max(1, math.ceil(math.log2(max(delta, 2))))


def decay_expected_rounds(delta: int, epsilon: float) -> float:
    """Classic static-model Decay latency O(log Δ · log(1/ε)) for one delivery."""
    return decay_cycle_length(delta) * _log_inv(epsilon)
