"""repro: a local broadcast layer for unreliable (dual graph) radio networks.

This package reproduces, as a runnable Python library, the system described in
*“A (Truly) Local Broadcast Layer for Unreliable Radio Networks”*
(Nancy Lynch and Calvin Newport, PODC 2015):

* :mod:`repro.dualgraph` -- the dual graph network model ``(G, G')`` with
  reliable and unreliable links, r-geographic embeddings, region partitions,
  and oblivious link schedulers (the adversary).
* :mod:`repro.simulation` -- a synchronous round-based radio simulator with
  the paper's collision rules, deterministic environments, execution traces,
  metrics, and multi-trial drivers.
* :mod:`repro.core` -- the paper's contribution: the ``Seed(δ, ε)`` seed
  agreement specification and the ``SeedAlg`` algorithm, the
  ``LB(t_ack, t_prog, ε)`` local broadcast specification and the ``LBAlg``
  algorithm, and the parameter calculus connecting them.
* :mod:`repro.baselines` -- Decay, uniform-probability, and round-robin
  broadcast strategies used as comparison points.
* :mod:`repro.mac` -- the abstract MAC layer interpretation of the service and
  applications built on top of it (multi-hop flooding).
* :mod:`repro.analysis` -- the paper's theoretical bound formulas, statistics
  helpers, and parameter sweep utilities used by the benchmarks.
* :mod:`repro.scenarios` -- the declarative experiment layer: serializable
  :class:`ScenarioSpec` trees over component registries, ``build`` / ``run``
  / ``run_many``, and the ``python -m repro`` CLI (see ``docs/scenarios.md``).

Quickstart
----------
>>> import random
>>> from repro import (
...     random_geographic_network, IIDScheduler, LBParams, make_lb_processes,
...     Simulator, SingleShotEnvironment, check_lb_execution,
... )
>>> graph, _ = random_geographic_network(20, side=3.0, rng=7, require_connected=True)
>>> params = LBParams.small_for_testing(delta=graph.max_reliable_degree,
...                                     delta_prime=graph.max_potential_degree)
>>> rng = random.Random(7)
>>> sim = Simulator(
...     graph,
...     make_lb_processes(graph, params, rng),
...     scheduler=IIDScheduler(graph, probability=0.5, seed=7),
...     environment=SingleShotEnvironment(senders=[0]),
... )
>>> trace = sim.run(params.tack_rounds)
>>> report = check_lb_execution(trace, graph, params.tack_rounds, params.tprog_rounds)
>>> report.deterministic_ok
True
"""

from repro.dualgraph import (
    AdaptiveLinkScheduler,
    SchedulerDeltaCache,
    AntiScheduleAdversary,
    CollisionAdaptiveAdversary,
    DualGraph,
    Embedding,
    TopologyIndex,
    FullInclusionScheduler,
    GridRegionPartition,
    IIDScheduler,
    LinkScheduler,
    NoUnreliableScheduler,
    PeriodicScheduler,
    RegionGraph,
    TraceScheduler,
    clique_network,
    cluster_network,
    geographic_dual_graph,
    grid_network,
    is_r_geographic,
    line_network,
    random_geographic_network,
    star_network,
    two_clusters_network,
)
from repro.simulation import (
    BurstyEnvironment,
    Environment,
    ExecutionTrace,
    NullEnvironment,
    Process,
    ProcessContext,
    SaturatingEnvironment,
    ScriptedEnvironment,
    Simulator,
    SingleShotEnvironment,
    TraceMode,
    TrialResult,
    ack_delays,
    delivery_report,
    progress_report,
    run_trials,
    unique_seed_owner_counts,
)
from repro.core import (
    LBConstants,
    LBParams,
    LBSpecReport,
    LocalBroadcastProcess,
    Message,
    ParamMode,
    SeedAgreementProcess,
    SeedBitStream,
    SeedConstants,
    SeedParams,
    SeedSpecReport,
    check_lb_execution,
    check_seed_execution,
    make_message,
)
from repro.core.local_broadcast import make_lb_processes
from repro.baselines import (
    DecayProcess,
    RoundRobinProcess,
    UniformProcess,
    make_baseline_processes,
)
from repro.mac import AbstractMacNode, FloodClient, MacClient, run_flood
from repro.analysis import theory
from repro.analysis.stats import empirical_error_rate, summarize, wilson_interval
from repro.analysis.sweep import (
    ParallelSweepRunner,
    SweepResult,
    format_table,
    parallel_sweep,
    sweep,
)
from repro import scenarios
from repro.scenarios import (
    AlgorithmSpec,
    EngineConfig,
    EnvironmentSpec,
    RunPolicy,
    RunResult,
    ScenarioSpec,
    SchedulerSpec,
    TopologySpec,
    register_algorithm,
    register_environment,
    register_scheduler,
    register_topology,
)

__version__ = "1.1.0"

__all__ = [
    # dual graph substrate
    "DualGraph",
    "TopologyIndex",
    "Embedding",
    "GridRegionPartition",
    "RegionGraph",
    "geographic_dual_graph",
    "is_r_geographic",
    "random_geographic_network",
    "grid_network",
    "line_network",
    "clique_network",
    "star_network",
    "cluster_network",
    "two_clusters_network",
    "LinkScheduler",
    "AdaptiveLinkScheduler",
    "CollisionAdaptiveAdversary",
    "NoUnreliableScheduler",
    "FullInclusionScheduler",
    "IIDScheduler",
    "PeriodicScheduler",
    "AntiScheduleAdversary",
    "TraceScheduler",
    "SchedulerDeltaCache",
    # simulation substrate
    "Process",
    "ProcessContext",
    "Simulator",
    "Environment",
    "NullEnvironment",
    "SingleShotEnvironment",
    "SaturatingEnvironment",
    "ScriptedEnvironment",
    "BurstyEnvironment",
    "ExecutionTrace",
    "TraceMode",
    "run_trials",
    "TrialResult",
    "ack_delays",
    "delivery_report",
    "progress_report",
    "unique_seed_owner_counts",
    # core contribution
    "Message",
    "make_message",
    "ParamMode",
    "SeedConstants",
    "LBConstants",
    "SeedParams",
    "LBParams",
    "SeedBitStream",
    "SeedAgreementProcess",
    "SeedSpecReport",
    "check_seed_execution",
    "LocalBroadcastProcess",
    "make_lb_processes",
    "LBSpecReport",
    "check_lb_execution",
    # baselines
    "DecayProcess",
    "UniformProcess",
    "RoundRobinProcess",
    "make_baseline_processes",
    # abstract MAC layer
    "AbstractMacNode",
    "MacClient",
    "FloodClient",
    "run_flood",
    # declarative scenarios
    "scenarios",
    "ScenarioSpec",
    "TopologySpec",
    "SchedulerSpec",
    "AlgorithmSpec",
    "EnvironmentSpec",
    "EngineConfig",
    "RunPolicy",
    "RunResult",
    "register_topology",
    "register_scheduler",
    "register_algorithm",
    "register_environment",
    # analysis
    "theory",
    "empirical_error_rate",
    "wilson_interval",
    "summarize",
    "sweep",
    "parallel_sweep",
    "ParallelSweepRunner",
    "SweepResult",
    "format_table",
    "__version__",
]
