"""``python -m repro``: the scenario runner CLI (see docs/scenarios.md)."""

from repro.scenarios.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
