"""The ``python -m repro`` command line: run scenario JSON files end to end.

Subcommands:

* ``run SCENARIO.json`` -- execute one scenario and print (or write) its
  :class:`~repro.scenarios.runtime.RunResult` summary.  Exits non-zero when
  the result is empty (no trial ran a round / nothing was ever transmitted),
  which is what the CI smoke job asserts against.
* ``sweep SCENARIO.json --grid path=v1,v2,...`` -- fan an override grid out
  over the parallel sweep runner (``--jobs``) and print the result table.
* ``suite SUITE.json`` -- run a scenario-suite manifest (every entry, every
  trial, optionally on a worker pool) and print its pooled per-group report;
  ``--json`` / ``--markdown`` write the full :class:`~repro.scenarios.suite.SuiteReport`.
  ``--store DIR`` serves/persists trials through the content-addressed
  result store; ``--shard k/N`` executes one deterministic slice of the task
  list (writing a shard file under the store), ``--merge`` reassembles the
  saved shards into the full report, ``--resume`` journals finished
  tasks to a checkpoint so a killed run restarts where it stopped, and
  ``--fleet N`` dispatches the task list across N OS worker processes with
  crash-safe work-stealing leases (:func:`repro.scenarios.fleet.run_suite_fleet`).
* ``serve --store DIR`` -- run the async scenario service: an HTTP job
  queue accepting suite/scenario submissions with in-flight + at-rest
  dedup, NDJSON progress streaming, per-job retry, and checkpointed
  graceful shutdown (see docs/service.md).
* ``store stats|gc DIR`` -- inspect or compact a result store.
* ``list`` -- the registered components (including metrics), with their
  sample arguments.

Values on ``--set`` / ``--grid`` are parsed as JSON when possible and fall
back to strings, so ``--set scheduler.args.probability=0.25`` and
``--set topology.name=grid`` both do what they look like.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.sweep import format_table
from repro.scenarios.metrics import METRICS
from repro.scenarios.registry import ALGORITHMS, ENVIRONMENTS, SCHEDULERS, TOPOLOGIES
from repro.scenarios.runtime import run, run_many
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.store import ResultStore
from repro.scenarios.fleet import run_suite_fleet
from repro.scenarios.suite import (
    SuiteShard,
    SuiteSpec,
    merge_reports,
    parse_shard,
    run_suite,
    run_suite_shard,
)


def _parse_value(text: str) -> Any:
    try:
        return json.loads(text)
    except ValueError:
        return text


def _parse_set_options(options: Optional[Sequence[str]]) -> Dict[str, Any]:
    overrides: Dict[str, Any] = {}
    for option in options or ():
        path, sep, value = option.partition("=")
        if not sep or not path:
            raise SystemExit(f"--set expects PATH=VALUE, got {option!r}")
        overrides[path] = _parse_value(value)
    return overrides


def _parse_grid_values(values: str) -> List[Any]:
    """Parse a ``--grid`` value list without shredding JSON on inner commas.

    The text is first tried as one JSON array (``[values]``), which handles
    list- and object-valued entries like ``[0,1],[2,3]`` or
    ``{"select":"first","count":1},{"select":"all"}``; only if that fails is
    it split on top-level commas with each fragment parsed individually
    (JSON when possible, bare string otherwise).
    """
    try:
        parsed = json.loads(f"[{values}]")
        if isinstance(parsed, list) and parsed:
            return parsed
    except ValueError:
        pass
    return [_parse_value(value) for value in values.split(",")]


def _parse_grid_options(options: Optional[Sequence[str]]) -> Dict[str, List[Any]]:
    grid: Dict[str, List[Any]] = {}
    for option in options or ():
        path, sep, values = option.partition("=")
        if not sep or not path or not values:
            raise SystemExit(f"--grid expects PATH=V1,V2,..., got {option!r}")
        grid[path] = _parse_grid_values(values)
    return grid


def _load_spec(path: str, set_options: Optional[Sequence[str]]) -> ScenarioSpec:
    spec = ScenarioSpec.load(path)
    overrides = _parse_set_options(set_options)
    if overrides:
        spec = spec.with_overrides(overrides)
    return spec


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args.scenario, args.set)
    result = run(spec, keep=False)
    summary = result.to_dict()
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    if not args.quiet:
        print(f"scenario   : {spec.name}  (fingerprint {result.fingerprint})")
        if spec.description:
            print(f"description: {spec.description}")
        print(
            f"components : topology={spec.topology.name} algorithm={spec.algorithm.name} "
            f"scheduler={spec.scheduler.name} environment={spec.environment.name}"
        )
        print(
            format_table(
                [t.to_dict()["metrics"] | {"trial": t.trial_index, "seed": t.seed} for t in result.trials],
                columns=["trial", "seed", "rounds", "transmissions", "receptions", "bcasts", "acks", "recvs", "rounds_per_s"],
                title="per-trial results:",
            )
        )
        print()
        print("aggregate  : " + json.dumps(result.metrics, sort_keys=True, default=str))
    if not result or result.metrics.get("transmissions", 0) == 0:
        print("ERROR: scenario produced an empty result", file=sys.stderr)
        return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = _load_spec(args.scenario, args.set)
    grid = _parse_grid_options(args.grid)
    if not grid:
        raise SystemExit("sweep needs at least one --grid PATH=V1,V2,... option")
    result = run_many(
        spec,
        grid,
        jobs=args.jobs,
        base_seed=args.base_seed,
        cache_dir=args.cache_dir,
    )
    columns = list(grid) + [
        "trials",
        "rounds",
        "transmissions",
        "receptions",
        "acks",
        "recvs",
        "rounds_per_s",
    ]
    print(format_table(result.rows, columns=columns, title=f"sweep over {spec.name}:"))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                {"scenario": spec.to_dict(), "grid": grid, "rows": result.rows},
                handle,
                indent=2,
                sort_keys=True,
                default=str,
            )
        print(f"wrote {args.json}")
    # Mirror `run`'s emptiness check: a sweep that completes but never
    # transmitted anywhere is a degenerate configuration, not a result.
    if not any(row.get("transmissions", 0) > 0 for row in result.rows):
        print("ERROR: sweep produced no transmissions in any grid point", file=sys.stderr)
        return 1
    return 0


def _suite_run_dir(store_dir: str, fingerprint: str) -> str:
    """Where one suite's shard files and checkpoints live inside a store."""
    return os.path.join(store_dir, "suite", fingerprint)


def _cmd_suite(args: argparse.Namespace) -> int:
    suite = SuiteSpec.load(args.suite)
    fingerprint = suite.fingerprint()
    if (args.shard or args.merge or args.resume) and not args.store:
        raise SystemExit("--shard/--merge/--resume need --store DIR for their on-disk state")
    if args.fleet is not None and (args.shard or args.merge or args.resume):
        raise SystemExit(
            "--fleet replaces --shard/--merge/--resume: leases partition the "
            "task list dynamically and the result store is the checkpoint "
            "(rerun the same --fleet command to resume)"
        )
    run_dir = _suite_run_dir(args.store, fingerprint) if args.store else None

    if args.fleet is not None:
        if args.fleet < 1:
            raise SystemExit(f"--fleet needs at least 1 worker, got {args.fleet}")
        report = run_suite_fleet(
            suite,
            workers=args.fleet,
            store=args.store,
            cache_dir=args.cache_dir,
            prebuild=not args.no_prebuild,
        )
        if not args.quiet and report.store_stats is not None:
            stats = report.store_stats
            print(
                f"fleet      : {stats['workers']} worker process(es), "
                f"{stats['steals']} lease steal(s)"
            )
    elif args.merge:
        paths = sorted(glob.glob(os.path.join(run_dir, "shard-*-of-*.json")))
        if not paths:
            raise SystemExit(f"--merge found no shard files under {run_dir}")
        try:
            report = merge_reports(suite, [SuiteShard.load(path) for path in paths])
        except ValueError as error:
            raise SystemExit(f"merge failed: {error}")
        if not args.quiet:
            print(f"merged     : {len(paths)} shard file(s) from {run_dir}")
    elif args.shard:
        shard_index, shard_count = parse_shard(args.shard)
        name = f"shard-{shard_index}-of-{shard_count}"
        checkpoint = (
            os.path.join(run_dir, name + ".checkpoint.jsonl") if args.resume else None
        )
        shard = run_suite_shard(
            suite,
            shard_index,
            shard_count,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            prebuild=not args.no_prebuild,
            store=args.store,
            checkpoint=checkpoint,
            resume=args.resume,
        )
        path = shard.save(os.path.join(run_dir, name + ".json"))
        if checkpoint is not None and os.path.exists(checkpoint):
            os.remove(checkpoint)
        stats = shard.stats
        print(
            f"shard {shard_index}/{shard_count}: {stats['tasks']} task(s) "
            f"({stats['hits']} from store, {stats['resumed']} resumed, "
            f"{stats['misses']} executed) in {shard.elapsed_s:.2f}s"
        )
        print(f"wrote {path}")
        return 0
    else:
        checkpoint = (
            os.path.join(run_dir, "run.checkpoint.jsonl")
            if run_dir is not None and args.resume
            else None
        )
        report = run_suite(
            suite,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            prebuild=not args.no_prebuild,
            store=args.store,
            checkpoint=checkpoint,
            resume=args.resume,
        )
    if not args.quiet:
        print(
            f"suite      : {suite.name}  (fingerprint {report.fingerprint}, "
            f"{len(suite.entries)} entries, {report.elapsed_s:.2f}s)"
        )
        if suite.description:
            print(f"description: {suite.description}")
        if report.store_stats is not None:
            stats = report.store_stats
            print(
                f"store      : {stats['hits']} of {stats['tasks']} task(s) from the "
                f"store, {stats['resumed']} resumed, {stats['misses']} executed"
            )
        print()
        print(report.format_table(by="entry", columns=args.columns))
        print()
        print(report.format_table(by="group", columns=args.columns))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True, default=str)
        print(f"wrote {args.json}")
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(report.to_markdown())
        print(f"wrote {args.markdown}")
    # Mirror `run`/`sweep`: a suite that completes without a single
    # transmission anywhere is a degenerate configuration, not a result.
    if not report or not any(
        e.result.metrics.get("transmissions", 0) > 0 for e in report.entries
    ):
        print("ERROR: suite produced an empty report", file=sys.stderr)
        return 1
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    store = ResultStore(args.dir)
    if args.action == "stats":
        stats = store.stats()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
            return 0
        print(f"store      : {stats['root']}")
        print(f"buckets    : {stats['files']} file(s), {stats['bytes']} bytes")
        print(f"entries    : {stats['entries']} distinct key(s) over {stats['lines']} line(s)")
        if stats["lines"] > stats["entries"]:
            print(
                f"             ({stats['lines'] - stats['entries']} superseded/duplicate "
                "line(s); `store gc` compacts them)"
            )
        return 0
    # args.action == "gc"
    outcome = store.gc(
        drop_fingerprints=tuple(args.drop_fingerprint or ()), dry_run=args.dry_run
    )
    verb = "would drop" if args.dry_run else "dropped"
    print(
        f"gc {store.root}: kept {outcome['kept']}, {verb} "
        f"{outcome['dropped_superseded']} superseded, "
        f"{outcome['dropped_corrupt']} corrupt, "
        f"{outcome['dropped_evicted']} evicted by fingerprint"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.scenarios.service import serve_main

    return serve_main(
        host=args.host,
        port=args.port,
        store=args.store,
        workers=args.workers,
        jobs=args.jobs,
        prebuild=args.prebuild,
        retries=args.retries,
        backoff_s=args.backoff,
        timeout_s=args.timeout,
        quiet=args.quiet,
        fleet=args.fleet,
        fleet_threshold=args.fleet_threshold,
        max_pending_tasks=args.max_pending_tasks,
    )


def _cmd_list(args: argparse.Namespace) -> int:
    registries = {
        "topology": TOPOLOGIES,
        "scheduler": SCHEDULERS,
        "algorithm": ALGORITHMS,
        "environment": ENVIRONMENTS,
        "metric": METRICS,
    }
    if args.kind:
        registries = {args.kind: registries[args.kind]}
    if args.json:
        payload = {
            kind: {name: registry.sample_args(name) for name in registry.names()}
            for kind, registry in registries.items()
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for kind, registry in registries.items():
        print(f"{kind} ({len(registry)}):")
        for name in registry.names():
            sample = registry.sample_args(name)
            suffix = f"  e.g. args={json.dumps(sample, sort_keys=True)}" if sample else ""
            print(f"  {name}{suffix}")
        print()
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run declarative experiment scenarios (see docs/scenarios.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="execute one scenario JSON end to end")
    run_parser.add_argument("scenario", help="path of the scenario JSON file")
    run_parser.add_argument(
        "--set",
        action="append",
        metavar="PATH=VALUE",
        help="override a spec field (dotted path), e.g. run.trials=3",
    )
    run_parser.add_argument("--json", help="also write the RunResult summary JSON here")
    run_parser.add_argument("--quiet", "-q", action="store_true", help="suppress the table")
    run_parser.set_defaults(func=_cmd_run)

    sweep_parser = sub.add_parser("sweep", help="run an override grid over a scenario")
    sweep_parser.add_argument("scenario", help="path of the scenario JSON file")
    sweep_parser.add_argument(
        "--grid",
        action="append",
        metavar="PATH=V1,V2,...",
        help="one grid dimension (repeatable), e.g. scheduler.args.probability=0.25,0.5",
    )
    sweep_parser.add_argument(
        "--set", action="append", metavar="PATH=VALUE", help="fixed override applied first"
    )
    sweep_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="sweep worker processes (default 1 = serial; values above 1 use a process pool)",
    )
    sweep_parser.add_argument(
        "--base-seed", type=int, default=None, help="derive per-point master seeds from this"
    )
    sweep_parser.add_argument(
        "--cache-dir", default=None, help="directory for on-disk scheduler-delta tables"
    )
    sweep_parser.add_argument("--json", help="also write the sweep rows JSON here")
    sweep_parser.set_defaults(func=_cmd_sweep)

    suite_parser = sub.add_parser(
        "suite", help="run a scenario-suite manifest end to end (see docs/suites.md)"
    )
    suite_parser.add_argument("suite", help="path of the suite manifest JSON file")
    suite_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the flattened (entry, trial) task list "
        "(default 1 = serial; values above 1 use a process pool)",
    )
    suite_parser.add_argument(
        "--cache-dir", default=None, help="directory for on-disk scheduler-delta tables"
    )
    suite_parser.add_argument(
        "--no-prebuild",
        action="store_true",
        help="skip the upfront scheduler-delta prebuild pass",
    )
    suite_parser.add_argument(
        "--columns",
        nargs="+",
        default=None,
        help="restrict the printed tables to these columns",
    )
    suite_parser.add_argument("--json", help="also write the full SuiteReport JSON here")
    suite_parser.add_argument("--markdown", help="also write the group table as markdown here")
    suite_parser.add_argument("--quiet", "-q", action="store_true", help="suppress the tables")
    suite_parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="content-addressed result store: completed trials are served from "
        "here instead of re-executing, fresh ones are persisted (see docs/store.md)",
    )
    suite_parser.add_argument(
        "--shard",
        default=None,
        metavar="K/N",
        help="execute only shard K of N (1-based, deterministic partition) and "
        "write the shard file under --store instead of a report",
    )
    suite_parser.add_argument(
        "--merge",
        action="store_true",
        help="merge the shard files saved under --store into the full report "
        "(fails if any shard is missing)",
    )
    suite_parser.add_argument(
        "--resume",
        action="store_true",
        help="journal finished tasks to a checkpoint under --store and, when "
        "one exists from a killed run, trust its records instead of re-executing",
    )
    suite_parser.add_argument(
        "--fleet",
        type=int,
        default=None,
        metavar="N",
        help="execute across N OS worker processes with dynamic work-stealing "
        "leases (crash-safe; the --store doubles as the resume checkpoint); "
        "replaces --shard/--merge/--resume",
    )
    suite_parser.set_defaults(func=_cmd_suite)

    serve_parser = sub.add_parser(
        "serve",
        help="run the async scenario service over HTTP (see docs/service.md)",
    )
    serve_parser.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="result-store root: at-rest dedup, the job journal, checkpoints "
        "and persisted reports all live here",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8653,
        help="TCP port (0 = let the OS pick; the ready line prints the result)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2, help="concurrent suite executions"
    )
    serve_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="default per-suite worker processes (submissions may override "
        "via options.jobs)",
    )
    serve_parser.add_argument(
        "--prebuild",
        action="store_true",
        help="default the scheduler-delta prebuild pass to on",
    )
    serve_parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="extra attempts after a crashed or timed-out execution",
    )
    serve_parser.add_argument(
        "--backoff",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="first retry delay (doubles per attempt)",
    )
    serve_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt wall-clock budget (default: unlimited)",
    )
    serve_parser.add_argument(
        "--quiet", "-q", action="store_true", help="only print the ready line"
    )
    serve_parser.add_argument(
        "--fleet",
        type=int,
        default=0,
        metavar="N",
        help="dispatch big jobs across N OS worker processes with work-stealing "
        "leases (0 = disabled; see --fleet-threshold)",
    )
    serve_parser.add_argument(
        "--fleet-threshold",
        type=int,
        default=32,
        metavar="TASKS",
        help="minimum flattened task count before a job rides the fleet "
        "(submissions may force it per job via options.fleet)",
    )
    serve_parser.add_argument(
        "--max-pending-tasks",
        type=int,
        default=None,
        metavar="TASKS",
        help="queue-depth backpressure: reject (HTTP 429) submissions that "
        "would push the pending-task backlog past this bound",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    store_parser = sub.add_parser(
        "store", help="inspect or compact a content-addressed result store"
    )
    store_sub = store_parser.add_subparsers(dest="action", required=True)
    stats_parser = store_sub.add_parser("stats", help="entry/size/hit counters")
    stats_parser.add_argument("dir", help="store root directory")
    stats_parser.add_argument("--json", action="store_true", help="machine-readable output")
    stats_parser.set_defaults(func=_cmd_store)
    gc_parser = store_sub.add_parser(
        "gc",
        help="compact buckets: drop corrupt/superseded lines (safe alongside "
        "live writers; buckets are file-locked)",
    )
    gc_parser.add_argument("dir", help="store root directory")
    gc_parser.add_argument(
        "--drop-fingerprint",
        action="append",
        metavar="FP",
        help="also evict every record produced by this spec fingerprint (repeatable)",
    )
    gc_parser.add_argument(
        "--dry-run", action="store_true", help="report what would change, touch nothing"
    )
    gc_parser.set_defaults(func=_cmd_store)

    list_parser = sub.add_parser("list", help="list registered scenario components")
    list_parser.add_argument(
        "--kind",
        choices=["topology", "scheduler", "algorithm", "environment", "metric"],
        help="restrict to one registry",
    )
    list_parser.add_argument("--json", action="store_true", help="machine-readable output")
    list_parser.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
