"""Declarative scenario layer: serializable experiment specs and registries.

``repro.scenarios`` turns an experiment into *data*: a
:class:`~repro.scenarios.spec.ScenarioSpec` tree that names registered
components (topology, scheduler, algorithm, environment) plus engine and run
policy, round-trips through JSON, and carries a stable
:meth:`~repro.scenarios.spec.ScenarioSpec.fingerprint`.  On top of it:

* :func:`~repro.scenarios.runtime.build` -- spec to a configured
  :class:`~repro.simulation.engine.Simulator`;
* :func:`~repro.scenarios.runtime.run` -- spec to a
  :class:`~repro.scenarios.runtime.RunResult` (metrics, traces, perf stats);
* :func:`~repro.scenarios.runtime.run_many` -- an override grid over a spec,
  dispatched to :class:`~repro.analysis.sweep.ParallelSweepRunner` workers as
  serialized specs (never pickled closures), with scheduler-delta tables
  prebuilt and shared by spec fingerprint;
* ``python -m repro`` -- the ``run`` / ``sweep`` / ``list`` CLI over scenario
  JSON files (:mod:`repro.scenarios.cli`).

See ``docs/scenarios.md`` for the spec schema and the registry catalogue.
"""

from repro.scenarios import components  # noqa: F401  (registers built-ins)
from repro.scenarios.components import AlgorithmBuild, resolve_senders
from repro.scenarios.registry import (
    ALGORITHMS,
    ENVIRONMENTS,
    SCHEDULERS,
    TOPOLOGIES,
    Registry,
    register_algorithm,
    register_environment,
    register_scheduler,
    register_topology,
)
from repro.scenarios.runtime import (
    BuiltScenario,
    RunResult,
    TrialRunResult,
    build,
    materialize,
    prebuild_delta_table,
    run,
    run_many,
    run_spec_point,
)
from repro.scenarios.spec import (
    AlgorithmSpec,
    EngineConfig,
    EnvironmentSpec,
    RunPolicy,
    ScenarioSpec,
    SchedulerSpec,
    TopologySpec,
)

__all__ = [
    # spec tree
    "ScenarioSpec",
    "TopologySpec",
    "SchedulerSpec",
    "AlgorithmSpec",
    "EnvironmentSpec",
    "EngineConfig",
    "RunPolicy",
    # registries
    "Registry",
    "TOPOLOGIES",
    "SCHEDULERS",
    "ALGORITHMS",
    "ENVIRONMENTS",
    "register_topology",
    "register_scheduler",
    "register_algorithm",
    "register_environment",
    # runtime
    "AlgorithmBuild",
    "BuiltScenario",
    "RunResult",
    "TrialRunResult",
    "build",
    "materialize",
    "run",
    "run_many",
    "run_spec_point",
    "prebuild_delta_table",
    "resolve_senders",
]
