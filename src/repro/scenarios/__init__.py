"""Declarative scenario layer: serializable experiment specs and registries.

``repro.scenarios`` turns an experiment into *data*: a
:class:`~repro.scenarios.spec.ScenarioSpec` tree that names registered
components (topology, scheduler, algorithm, environment) plus engine and run
policy, round-trips through JSON, and carries a stable
:meth:`~repro.scenarios.spec.ScenarioSpec.fingerprint`.  On top of it:

* :func:`~repro.scenarios.runtime.build` -- spec to a configured
  :class:`~repro.simulation.engine.Simulator`;
* :func:`~repro.scenarios.runtime.run` -- spec to a
  :class:`~repro.scenarios.runtime.RunResult` (metrics, traces, perf stats);
* :func:`~repro.scenarios.runtime.run_many` -- an override grid over a spec,
  dispatched to :class:`~repro.analysis.sweep.ParallelSweepRunner` workers as
  serialized specs (never pickled closures), with scheduler-delta tables
  prebuilt and shared by spec fingerprint;
* :mod:`repro.scenarios.metrics` -- the declarative metrics pipeline:
  registered trace reducers (``register_metric``) with minimum-trace-mode
  metadata and :mod:`repro.analysis.stats`-backed aggregation, named by
  :class:`~repro.scenarios.spec.MetricSpec` entries on a scenario;
* :mod:`repro.scenarios.suite` -- scenario suites: a JSON
  :class:`~repro.scenarios.suite.SuiteSpec` manifest of many specs run (with
  per-spec and per-trial parallelism, deterministic ``k/N`` sharding, and
  checkpoint/resume) into one :class:`~repro.scenarios.suite.SuiteReport`;
* :mod:`repro.scenarios.store` -- the content-addressed
  :class:`~repro.scenarios.store.ResultStore`: per-trial records keyed by
  (scenario content identity, trial seed, metrics signature), consulted by
  every execution path before re-running a trial;
* :mod:`repro.scenarios.jobs` / :mod:`repro.scenarios.service` -- the async
  scenario service (``python -m repro serve``): a durable, deduplicating
  HTTP job queue over :func:`~repro.scenarios.suite.run_suite`, with NDJSON
  progress streaming, retry with backoff, and checkpointed graceful
  shutdown (:class:`~repro.scenarios.jobs.JobManager`);
* ``python -m repro`` -- the ``run`` / ``sweep`` / ``suite`` / ``serve`` /
  ``store`` / ``list`` CLI over scenario and suite JSON files
  (:mod:`repro.scenarios.cli`).

See ``docs/scenarios.md`` for the spec schema and the registry catalogue,
``docs/suites.md`` for the metrics pipeline and suite manifests,
``docs/store.md`` for the result-store layout and keying, and
``docs/service.md`` for the serving API.
"""

from repro.scenarios import components  # noqa: F401  (registers built-ins)
from repro.scenarios.components import AlgorithmBuild, resolve_senders
from repro.scenarios.metrics import (
    METRICS,
    MetricContext,
    MetricRegistry,
    aggregate_metric_rows,
    evaluate_metrics,
    flatten_aggregates,
    register_metric,
    required_trace_mode,
)
from repro.scenarios.registry import (
    ALGORITHMS,
    ENVIRONMENTS,
    SCHEDULERS,
    TOPOLOGIES,
    Registry,
    register_algorithm,
    register_environment,
    register_scheduler,
    register_topology,
)
from repro.scenarios.runtime import (
    BuiltScenario,
    RunResult,
    TrialRunResult,
    build,
    materialize,
    prebuild_delta_table,
    resolve_params,
    resolve_trace_mode,
    run,
    run_many,
    run_spec_point,
    run_trial,
)
from repro.scenarios.spec import (
    AlgorithmSpec,
    EngineConfig,
    EnvironmentSpec,
    MetricSpec,
    RunPolicy,
    ScenarioSpec,
    SchedulerSpec,
    TopologySpec,
)
from repro.scenarios.store import (
    ResultStore,
    metrics_signature,
    scenario_trial_identity,
    trial_key,
)
from repro.scenarios.suite import (
    SuiteCancelled,
    SuiteEntry,
    SuiteEntryResult,
    SuiteReport,
    SuiteShard,
    SuiteSpec,
    deterministic_report_dict,
    merge_reports,
    parse_shard,
    run_suite,
    run_suite_shard,
    shard_tasks,
)
from repro.scenarios.fleet import (
    DEFAULT_LEASE_TTL_S,
    default_task_runner,
    run_suite_fleet,
)
from repro.scenarios.jobs import (
    FaultPlan,
    Job,
    JobManager,
    JobRejected,
    parse_submission,
)

__all__ = [
    # spec tree
    "ScenarioSpec",
    "TopologySpec",
    "SchedulerSpec",
    "AlgorithmSpec",
    "EnvironmentSpec",
    "MetricSpec",
    "EngineConfig",
    "RunPolicy",
    # registries
    "Registry",
    "MetricRegistry",
    "TOPOLOGIES",
    "SCHEDULERS",
    "ALGORITHMS",
    "ENVIRONMENTS",
    "METRICS",
    "register_topology",
    "register_scheduler",
    "register_algorithm",
    "register_environment",
    "register_metric",
    # metrics pipeline
    "MetricContext",
    "evaluate_metrics",
    "aggregate_metric_rows",
    "flatten_aggregates",
    "required_trace_mode",
    # runtime
    "AlgorithmBuild",
    "BuiltScenario",
    "RunResult",
    "TrialRunResult",
    "build",
    "materialize",
    "resolve_params",
    "resolve_trace_mode",
    "run",
    "run_trial",
    "run_many",
    "run_spec_point",
    "prebuild_delta_table",
    "resolve_senders",
    # result store
    "ResultStore",
    "metrics_signature",
    "scenario_trial_identity",
    "trial_key",
    # suites
    "SuiteSpec",
    "SuiteEntry",
    "SuiteEntryResult",
    "SuiteReport",
    "SuiteShard",
    "run_suite",
    "run_suite_shard",
    "merge_reports",
    "shard_tasks",
    "parse_shard",
    "deterministic_report_dict",
    "SuiteCancelled",
    # fleet execution
    "run_suite_fleet",
    "default_task_runner",
    "DEFAULT_LEASE_TTL_S",
    # service
    "JobManager",
    "Job",
    "JobRejected",
    "FaultPlan",
    "parse_submission",
]
