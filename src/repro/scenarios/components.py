"""Built-in scenario components.

Importing this module (which :mod:`repro.scenarios` does eagerly) populates
the four registries of :mod:`repro.scenarios.registry` with every network
generator, link scheduler, algorithm, and environment the library ships:

* **topologies** -- the :mod:`repro.dualgraph.generators` families plus the
  benchmark suite's degree-targeted sampler (``target_degree``);
* **schedulers** -- the oblivious schedulers of
  :mod:`repro.dualgraph.adversary`, the anti-schedule adversary, and the
  adaptive collision adversary (outside the paper's model, for boundary
  experiments);
* **algorithms** -- LBAlg, standalone SeedAlg, and the Decay / uniform /
  round-robin baselines;
* **environments** -- the deterministic environments of
  :mod:`repro.simulation.environment`.

Seed conventions: a component whose args pin an explicit ``seed`` is
byte-reproducible regardless of the trial; a component that omits it inherits
the trial seed from the :class:`~repro.scenarios.spec.RunPolicy`, which is
how multi-trial scenarios get independent samples from one spec.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple

from repro.baselines.decay import decay_schedule
from repro.baselines.factory import make_baseline_processes
from repro.core.local_broadcast import make_lb_processes
from repro.core.params import LBParams, SeedParams
from repro.core.seed_agreement import SeedAgreementProcess
from repro.dualgraph.adversary import (
    AntiScheduleAdversary,
    CollisionAdaptiveAdversary,
    FullInclusionScheduler,
    IIDScheduler,
    NoUnreliableScheduler,
    PeriodicScheduler,
    TraceScheduler,
)
from repro.dualgraph.generators import (
    cluster_network,
    clique_network,
    grid_network,
    line_network,
    random_geographic_network,
    star_network,
    two_clusters_network,
)
from repro.scenarios.registry import (
    register_algorithm,
    register_environment,
    register_scheduler,
    register_topology,
)
from repro.simulation.environment import (
    BurstyEnvironment,
    NullEnvironment,
    SaturatingEnvironment,
    ScriptedEnvironment,
    SingleShotEnvironment,
)
from repro.mac.adapter import make_mac_nodes
from repro.mac.applications.flood import FloodClient
from repro.simulation.process import ProcessContext
from repro.traffic.arrivals import build_arrival_process
from repro.traffic.environment import QueuedEnvironment
from repro.traffic.schedulers import TrafficAwareScheduler

#: Network "density profiles" for degree-targeted sampling: approximate
#: reliable degree bound -> (n, side) for random geographic networks.  Degree
#: bounds are approximate by nature (the sample decides), which is fine
#: because experiments record the *measured* Δ of the network they used.
#: (Shared with ``benchmarks/common.py``, which re-exports it.)
DENSITY_PROFILES: Dict[int, Tuple[int, float]] = {
    4: (12, 4.2),
    8: (16, 3.5),
    10: (20, 3.0),
    12: (28, 3.3),
    16: (30, 2.6),
    20: (36, 2.6),
    24: (40, 2.4),
    32: (56, 2.4),
}


def network_with_target_degree(
    target_delta: int, seed: int, require_connected: bool = True
):
    """Sample a random geographic network whose Δ lands near the target."""
    if target_delta not in DENSITY_PROFILES:
        raise KeyError(
            f"no density profile for Δ≈{target_delta}; known targets: {sorted(DENSITY_PROFILES)}"
        )
    n, side = DENSITY_PROFILES[target_delta]
    return random_geographic_network(
        n, side=side, r=2.0, rng=seed, require_connected=require_connected, max_attempts=80
    )


# ----------------------------------------------------------------------
# topologies
# ----------------------------------------------------------------------
@register_topology(
    "random_geographic", sample_args={"n": 16, "side": 3.2, "seed": 7}, trial_seeded=True
)
def _topology_random_geographic(
    trial_seed: int,
    n: int,
    side: float = 4.0,
    r: float = 2.0,
    seed: Optional[int] = None,
    grey_zone_edge_probability: Optional[float] = None,
    require_connected: bool = False,
    max_attempts: int = 50,
):
    return random_geographic_network(
        n,
        side=side,
        r=r,
        rng=seed if seed is not None else trial_seed,
        grey_zone_edge_probability=grey_zone_edge_probability,
        require_connected=require_connected,
        max_attempts=max_attempts,
    )


@register_topology(
    "target_degree", sample_args={"target_delta": 8, "seed": 3}, trial_seeded=True
)
def _topology_target_degree(
    trial_seed: int,
    target_delta: int,
    seed: Optional[int] = None,
    require_connected: bool = True,
):
    return network_with_target_degree(
        target_delta,
        seed=seed if seed is not None else trial_seed,
        require_connected=require_connected,
    )


@register_topology("grid", sample_args={"rows": 3, "cols": 4})
def _topology_grid(trial_seed: int, rows: int, cols: int, spacing: float = 0.9, r: float = 2.0):
    return grid_network(rows, cols, spacing=spacing, r=r)


@register_topology("line", sample_args={"n": 6})
def _topology_line(trial_seed: int, n: int, spacing: float = 0.9, r: float = 2.0):
    return line_network(n, spacing=spacing, r=r)


@register_topology("clique", sample_args={"n": 6})
def _topology_clique(trial_seed: int, n: int, radius: float = 0.45, r: float = 2.0):
    return clique_network(n, radius=radius, r=r)


@register_topology("star", sample_args={"leaves": 5})
def _topology_star(trial_seed: int, leaves: int, r: float = 2.0):
    return star_network(leaves, r=r)


@register_topology(
    "cluster", sample_args={"clusters": 2, "cluster_size": 4, "seed": 11}, trial_seeded=True
)
def _topology_cluster(
    trial_seed: int,
    clusters: int,
    cluster_size: int,
    cluster_spacing: float = 1.5,
    cluster_radius: float = 0.4,
    r: float = 2.0,
    seed: Optional[int] = None,
):
    return cluster_network(
        clusters,
        cluster_size,
        cluster_spacing=cluster_spacing,
        cluster_radius=cluster_radius,
        r=r,
        rng=seed if seed is not None else trial_seed,
    )


@register_topology(
    "two_clusters", sample_args={"cluster_size": 5, "seed": 42}, trial_seeded=True
)
def _topology_two_clusters(
    trial_seed: int,
    cluster_size: int = 6,
    gap: float = 1.5,
    r: float = 2.0,
    seed: Optional[int] = None,
):
    return two_clusters_network(
        cluster_size=cluster_size,
        gap=gap,
        r=r,
        rng=seed if seed is not None else trial_seed,
    )


# ----------------------------------------------------------------------
# schedulers
# ----------------------------------------------------------------------
@register_scheduler("none")
def _scheduler_none(graph, trial_seed: int):
    return NoUnreliableScheduler(graph)


@register_scheduler("full")
def _scheduler_full(graph, trial_seed: int):
    return FullInclusionScheduler(graph)


@register_scheduler(
    "iid", sample_args={"probability": 0.5, "seed": 7}, trial_seeded=True
)
def _scheduler_iid(
    graph, trial_seed: int, probability: float = 0.5, seed: Optional[int] = None
):
    return IIDScheduler(
        graph, probability=probability, seed=seed if seed is not None else trial_seed
    )


@register_scheduler(
    "periodic", sample_args={"on_rounds": 3, "off_rounds": 2}, trial_seeded=True
)
def _scheduler_periodic(
    graph,
    trial_seed: int,
    on_rounds: int = 5,
    off_rounds: int = 5,
    stagger: bool = False,
    seed: Optional[int] = None,
):
    return PeriodicScheduler(
        graph,
        on_rounds=on_rounds,
        off_rounds=off_rounds,
        stagger=stagger,
        seed=seed if seed is not None else trial_seed,
    )


@register_scheduler("anti_schedule", sample_args={"victim": "decay"})
def _scheduler_anti_schedule(
    graph,
    trial_seed: int,
    victim: Optional[str] = None,
    victim_probabilities: Optional[List[float]] = None,
    threshold: Optional[float] = None,
    phase_offset: int = 0,
):
    """The targeted oblivious adversary; ``victim="decay"`` derives the
    victim probability cycle from Decay's schedule for the graph's Δ."""
    if victim_probabilities is None:
        if victim != "decay":
            raise ValueError(
                "anti_schedule needs either victim_probabilities or victim='decay'"
            )
        victim_probabilities = list(decay_schedule(graph.max_reliable_degree))
    return AntiScheduleAdversary(
        graph,
        victim_probabilities,
        threshold=threshold,
        phase_offset=phase_offset,
    )


@register_scheduler("adaptive_collision")
def _scheduler_adaptive_collision(graph, trial_seed: int):
    """The collision-manufacturing adaptive adversary (outside the paper's
    model; the engine automatically falls back to the generic resolver)."""
    return CollisionAdaptiveAdversary(graph)


@register_scheduler("trace", sample_args={"schedule": [[], []]})
def _scheduler_trace(graph, trial_seed: int, schedule: List[List[List[Any]]], cycle: bool = True):
    return TraceScheduler(
        graph, [[tuple(pair) for pair in entry] for entry in schedule], cycle=cycle
    )


def _traffic_forecast(graph, traffic, trial_seed: int):
    """Per-vertex expected arrival rates (and sinks) from a ``TrafficSpec``.

    Builds a throwaway arrival process purely for its a-priori
    ``expected_rate`` view -- no stream bits are consumed, and every arrival
    kind's forecast is seed-independent, so schedulers built in different
    processes (materialize vs. delta prebuild) agree on the schedule.
    Returns ``(None, ())`` when the scenario declares no traffic, which the
    scheduler treats as a uniform unit forecast.
    """
    if traffic is None:
        return None, ()
    sources = resolve_senders(
        graph, traffic.sources if traffic.sources is not None else {"select": "all"}
    )
    seed = traffic.seed if traffic.seed is not None else trial_seed
    process = build_arrival_process(
        traffic.arrival.name,
        traffic.arrival.args,
        sources=sources,
        sinks=traffic.sinks,
        seed=seed,
    )
    rates = {v: process.expected_rate(v) for v in graph.vertices}
    return rates, tuple(traffic.sinks)


def _register_traffic_scheduler(variant: str):
    @register_scheduler(variant)
    def _build(
        graph,
        trial_seed: int,
        traffic=None,
        frame: Optional[int] = None,
        sinks: Optional[List[Any]] = None,
    ):
        rates, traffic_sinks = _traffic_forecast(graph, traffic, trial_seed)
        return TrafficAwareScheduler(
            graph,
            rates=rates,
            sinks=tuple(sinks) if sinks else traffic_sinks,
            frame=frame,
            variant=variant,
        )

    _build.__name__ = f"_scheduler_{variant}"
    _build.__doc__ = (
        f"The {variant!r} slot-frame scheduler of "
        "repro.traffic.schedulers.TrafficAwareScheduler, forecast-driven by "
        "the scenario's traffic spec (uniform forecast when none is declared)."
    )
    return _build


_register_traffic_scheduler("tasa")
_register_traffic_scheduler("longest_queue")


# ----------------------------------------------------------------------
# algorithms
# ----------------------------------------------------------------------
@dataclass
class AlgorithmBuild:
    """What an algorithm builder hands back to the scenario runtime.

    ``phase_length`` / ``tack_rounds`` / ``natural_rounds`` feed the
    :class:`~repro.scenarios.spec.RunPolicy` round units (``"phases"`` /
    ``"tack"`` / ``"algorithm"``); builders leave them ``None`` when the
    algorithm has no such structure (the baselines), in which case only the
    literal ``"rounds"`` unit applies.
    """

    processes: Dict[Hashable, Any]
    params: Any = None
    phase_length: Optional[int] = None
    tack_rounds: Optional[int] = None
    natural_rounds: Optional[int] = None
    extras: Dict[str, Any] = field(default_factory=dict)


@register_algorithm("lbalg", sample_args={"epsilon": 0.2, "preset": "small"})
def _algorithm_lbalg(
    graph,
    rng: random.Random,
    epsilon: float = 0.2,
    preset: str = "derived",
    r: float = 2.0,
    seed_reuse_phases: int = 1,
    delta_budget: Optional[int] = None,
    delta_prime_budget: Optional[int] = None,
    tprog_override: Optional[int] = None,
    tack_phases_override: Optional[int] = None,
    seed_phase_length_override: Optional[int] = None,
    params_only: bool = False,
) -> AlgorithmBuild:
    """LBAlg at every vertex, with parameters derived from the measured Δ, Δ'.

    ``preset="derived"`` is the full Appendix C.1 calculus;
    ``preset="small"`` is :meth:`~repro.core.params.LBParams.small_for_testing`
    (compact but structurally faithful -- what the engine benchmarks use).
    ``delta_budget`` / ``delta_prime_budget`` replace the measured degree
    bounds in the derivation -- the "processes only know the budgets, not the
    sampled maxima" configuration of the locality experiment (the schedule is
    then identical for every sampled network).  ``params_only=True`` resolves
    the derived parameters and round lengths without constructing the process
    population (the params-only resolution mode; see
    :meth:`repro.scenarios.registry.Registry.supports_params_only`).
    """
    delta, delta_prime = graph.degree_bounds()
    if delta_budget is not None:
        delta = delta_budget
    if delta_prime_budget is not None:
        delta_prime = delta_prime_budget
    if preset == "derived":
        params = LBParams.derive(
            epsilon,
            delta=delta,
            delta_prime=delta_prime,
            r=r,
            tprog_override=tprog_override,
            tack_phases_override=tack_phases_override,
            seed_phase_length_override=seed_phase_length_override,
        )
    elif preset == "small":
        params = LBParams.small_for_testing(
            delta=delta, delta_prime=delta_prime, epsilon=epsilon, r=r
        )
    else:
        raise ValueError(f"unknown lbalg preset {preset!r}; expected 'derived' or 'small'")
    if params_only:
        processes: Dict[Hashable, Any] = {}
    else:
        processes = make_lb_processes(
            graph, params, rng, seed_reuse_phases=seed_reuse_phases
        )
    return AlgorithmBuild(
        processes=processes,
        params=params,
        phase_length=params.phase_length,
        tack_rounds=params.tack_rounds,
        natural_rounds=params.tack_rounds,
    )


@register_algorithm("seed_agreement", sample_args={"epsilon": 0.2})
def _algorithm_seed_agreement(
    graph,
    rng: random.Random,
    epsilon: float = 0.1,
    r: float = 2.0,
    phase_length_override: Optional[int] = None,
    emit_decides: bool = True,
    params_only: bool = False,
) -> AlgorithmBuild:
    """Standalone SeedAlg at every vertex (the Section 3 primitive).

    ``params_only=True`` resolves the derived :class:`SeedParams` (and the
    phase/total round lengths) without building any process.
    """
    delta, delta_prime = graph.degree_bounds()
    params = SeedParams.derive(
        epsilon, delta=delta, r=r, phase_length_override=phase_length_override
    )
    if params_only:
        return AlgorithmBuild(
            processes={},
            params=params,
            phase_length=params.phase_length,
            natural_rounds=params.total_rounds,
        )
    # Natural vertex order (falling back to repr for mixed types): this is the
    # order the pre-spec SeedAlg experiments assigned per-vertex RNGs in, so
    # migrating them onto specs keeps their published outputs.
    try:
        ordered = sorted(graph.vertices)
    except TypeError:
        ordered = sorted(graph.vertices, key=repr)
    processes: Dict[Hashable, Any] = {}
    for vertex in ordered:
        ctx = ProcessContext(
            vertex=vertex,
            delta=delta,
            delta_prime=delta_prime,
            r=r,
            rng=random.Random(rng.getrandbits(64)),
        )
        processes[vertex] = SeedAgreementProcess(ctx, params, emit_decides=emit_decides)
    return AlgorithmBuild(
        processes=processes,
        params=params,
        phase_length=params.phase_length,
        natural_rounds=params.total_rounds,
    )


def _register_baseline(kind: str, sample_args: Mapping[str, Any]):
    @register_algorithm(kind, sample_args=sample_args)
    def _build(graph, rng: random.Random, r: float = 2.0, **kwargs) -> AlgorithmBuild:
        return AlgorithmBuild(
            processes=make_baseline_processes(graph, kind, rng, r=r, **kwargs)
        )

    _build.__name__ = f"_algorithm_{kind}"
    _build.__doc__ = f"The {kind!r} baseline broadcast strategy at every vertex."
    return _build


_register_baseline("decay", {"num_cycles": 4})
_register_baseline("uniform", {})
_register_baseline("round_robin", {})


@register_algorithm("flood", sample_args={"epsilon": 0.2, "source": 0})
def _algorithm_flood(
    graph,
    rng: random.Random,
    epsilon: float = 0.2,
    source: Hashable = 0,
    r: float = 2.0,
    compact_tack: bool = False,
    flood_id: str = "flood",
) -> AlgorithmBuild:
    """Global broadcast by flooding over the LBAlg-backed abstract MAC layer.

    The spec-expressible form of :func:`repro.mac.applications.flood.run_flood`:
    one :class:`~repro.mac.applications.flood.FloodClient` per vertex behind
    :func:`~repro.mac.adapter.make_mac_nodes`, parameters derived from the
    measured (Δ, Δ').  ``compact_tack=True`` applies the E8 harness's
    ``tack_phases_override=max(2, delta_prime)`` -- the flood only needs
    delivery to the next hop, so a compact sending period keeps the
    experiment fast while preserving the ``D * f_ack`` shape being measured.

    The natural round budget is ``(eccentricity(source) + 2) *
    (tack_phases + 1)`` phases, ``run_flood``'s default cap; the live clients
    ride along in ``extras["flood_clients"]`` for the ``flood`` metric, whose
    per-vertex receipt state is fixed once the token lands, so the metric
    row does not depend on where inside the cap the flood completed.
    """
    if source not in graph:
        raise KeyError(f"flood source vertex {source!r} is not in the graph")
    delta, delta_prime = graph.degree_bounds()
    params = LBParams.derive(
        epsilon,
        delta=delta,
        delta_prime=delta_prime,
        r=r,
        tack_phases_override=max(2, delta_prime) if compact_tack else None,
    )
    clients = {
        vertex: FloodClient(vertex, is_source=(vertex == source), flood_id=flood_id)
        for vertex in graph.vertices
    }
    nodes = make_mac_nodes(graph, params, lambda v: clients[v], rng)
    max_phases = (graph.reliable_eccentricity(source) + 2) * (params.tack_phases + 1)
    return AlgorithmBuild(
        processes=nodes,
        params=params,
        phase_length=params.phase_length,
        tack_rounds=params.tack_rounds,
        natural_rounds=max_phases * params.phase_length,
        extras={"flood_clients": clients, "flood_source": source},
    )


# ----------------------------------------------------------------------
# environments
# ----------------------------------------------------------------------
def resolve_senders(graph, senders: Any, embedding: Any = None) -> List[Hashable]:
    """Resolve a declarative sender selection against a materialized graph.

    Accepted forms:

    * an explicit list of vertices (used verbatim);
    * ``{"select": "all"}`` -- every vertex, sorted;
    * ``{"select": "first", "count": k}`` -- the first ``k`` vertices in
      sorted order;
    * ``{"select": "first", "divisor": d, "min": m}`` -- the first
      ``max(m, n // d)`` vertices (the benchmark suite's contention recipe);
    * ``{"select": "degree_top", "count": k}`` -- the ``k`` highest reliable
      degree vertices (ties broken by sort order);
    * ``{"select": "center_probe_neighbors", "count": k}`` -- the first ``k``
      sorted reliable neighbors of the vertex embedded nearest the center of
      the deployment area (:func:`repro.dualgraph.geometric.central_vertex`);
      the probe itself when it has no reliable neighbor.  Needs the trial's
      ``embedding`` (environment builders declare an ``embedding`` keyword to
      receive it; see
      :meth:`repro.scenarios.registry.Registry.supports_embedding`).  The E9
      locality experiment's contention recipe: saturate the probe's immediate
      neighborhood, wherever the sample put it.
    """
    if isinstance(senders, (list, tuple)):
        return list(senders)
    if not isinstance(senders, Mapping):
        raise TypeError(
            f"senders must be a list of vertices or a selection mapping, got {senders!r}"
        )
    select = senders.get("select")
    ordered = sorted(graph.vertices)
    if select == "all":
        return ordered
    if select == "first":
        if "count" in senders:
            count = int(senders["count"])
        elif "divisor" in senders:
            count = max(int(senders.get("min", 1)), graph.n // int(senders["divisor"]))
        else:
            raise ValueError("senders select='first' needs 'count' or 'divisor'")
        return ordered[:count]
    if select == "degree_top":
        count = int(senders["count"])
        by_degree = sorted(
            ordered, key=lambda v: len(graph.reliable_neighbors(v)), reverse=True
        )
        return by_degree[:count]
    if select == "center_probe_neighbors":
        if embedding is None:
            raise ValueError(
                "senders select='center_probe_neighbors' needs the trial's "
                "embedding (only embedding-aware environments can resolve it)"
            )
        from repro.dualgraph.geometric import central_vertex

        probe = central_vertex(graph, embedding)
        count = int(senders.get("count", 1))
        neighbors = sorted(graph.reliable_neighbors(probe))
        return neighbors[:count] if neighbors else [probe]
    if select == "receiver_trap":
        # The E6 adversary-resilience recipe: one reliable neighbor of the
        # silent receiver carries the probe, and everything from `cutoff`
        # up (the far cluster of a two_clusters topology) saturates the
        # unreliable bridge.  The receiver itself never sends.
        receiver = senders.get("receiver", 0)
        cutoff = int(senders["cutoff"])
        neighbors = sorted(graph.reliable_neighbors(receiver))
        if not neighbors:
            raise ValueError(
                f"senders select='receiver_trap': receiver {receiver!r} has no "
                "reliable neighbor to carry the probe"
            )
        far = [v for v in ordered if isinstance(v, int) and v >= cutoff]
        return [neighbors[0]] + far
    raise ValueError(
        f"unknown senders selection {select!r}; expected 'all', 'first', "
        "'degree_top', 'center_probe_neighbors' or 'receiver_trap'"
    )


@register_environment("null")
def _environment_null(graph):
    return NullEnvironment()


@register_environment(
    "single_shot",
    sample_args={"senders": {"select": "first", "count": 1}},
    workload="sparse",
)
def _environment_single_shot(
    graph,
    senders: Any,
    start_round: int = 1,
    payload_prefix: str = "msg-",
    embedding: Any = None,
):
    return SingleShotEnvironment(
        senders=resolve_senders(graph, senders, embedding=embedding),
        start_round=start_round,
        payload_prefix=payload_prefix,
    )


@register_environment(
    "saturating", sample_args={"senders": {"select": "first", "count": 2}}
)
def _environment_saturating(graph, senders: Any, start_round: int = 1, embedding: Any = None):
    return SaturatingEnvironment(
        senders=resolve_senders(graph, senders, embedding=embedding),
        start_round=start_round,
    )


@register_environment(
    "bursty", sample_args={"senders": {"select": "first", "count": 2}, "period": 25}
)
def _environment_bursty(
    graph, senders: Any, period: int = 50, start_round: int = 1, embedding: Any = None
):
    return BurstyEnvironment(
        senders=resolve_senders(graph, senders, embedding=embedding),
        period=period,
        start_round=start_round,
    )


@register_environment(
    "queued",
    sample_args={"arrival": {"name": "periodic", "args": {"period": 5}}},
    trial_seeded=True,
)
def _environment_queued(
    graph,
    traffic=None,
    arrival: Optional[Mapping[str, Any]] = None,
    capacity: Optional[int] = None,
    sources: Any = None,
    sinks: Optional[List[Any]] = None,
    seed: Optional[int] = None,
    trial_seed: int = 0,
    embedding: Any = None,
):
    """The queue-backed environment of :mod:`repro.traffic`.

    Configuration comes from the scenario's ``traffic`` node when one is
    declared (the normal path); inline args of the same names override its
    fields, and standalone use (no traffic node) configures entirely inline.
    The arrival seed defaults to the trial seed, so multi-trial runs draw
    independent realizations unless the spec pins one.
    """
    arrival_name: Optional[str] = None
    arrival_args: Mapping[str, Any] = {}
    resolved_capacity = 0
    resolved_sources: Any = None
    resolved_sinks: Tuple[Any, ...] = ()
    resolved_seed: Optional[int] = None
    if traffic is not None:
        arrival_name = traffic.arrival.name
        arrival_args = traffic.arrival.args
        resolved_capacity = traffic.capacity
        resolved_sources = traffic.sources
        resolved_sinks = traffic.sinks
        resolved_seed = traffic.seed
    if arrival is not None:
        arrival_name = arrival["name"]
        arrival_args = arrival.get("args", {})
    if capacity is not None:
        resolved_capacity = capacity
    if sources is not None:
        resolved_sources = sources
    if sinks is not None:
        resolved_sinks = tuple(sinks)
    if seed is not None:
        resolved_seed = seed
    if arrival_name is None:
        raise ValueError(
            "the 'queued' environment needs an arrival process: declare a "
            "'traffic' node on the scenario or pass an inline 'arrival' arg"
        )
    source_vertices = resolve_senders(
        graph,
        resolved_sources if resolved_sources is not None else {"select": "all"},
        embedding=embedding,
    )
    process = build_arrival_process(
        arrival_name,
        arrival_args,
        sources=source_vertices,
        sinks=resolved_sinks,
        seed=resolved_seed if resolved_seed is not None else trial_seed,
    )
    return QueuedEnvironment(graph, process, capacity=resolved_capacity)


@register_environment("scripted", sample_args={"script": {"1": {"0": "hello"}}})
def _environment_scripted(graph, script: Mapping[str, Mapping[str, Any]]):
    """A :class:`ScriptedEnvironment` from JSON.

    JSON object keys are strings; round keys are converted to ``int`` and
    vertex keys are converted to ``int`` when the graph's vertices are ints
    (the case for every registered topology), otherwise used verbatim.
    """
    int_vertices = all(isinstance(v, int) for v in graph.vertices)

    def vertex_key(key: Any) -> Any:
        if int_vertices and isinstance(key, str):
            return int(key)
        return key

    converted = {
        int(round_key): {vertex_key(v): payload for v, payload in entries.items()}
        for round_key, entries in script.items()
    }
    return ScriptedEnvironment(converted)
