"""Materializing and executing :class:`~repro.scenarios.spec.ScenarioSpec` trees.

The runtime is the bridge from declarative specs to the live simulation
stack:

* :func:`materialize` resolves a spec's registry names into a graph,
  processes, scheduler, environment, and a configured
  :class:`~repro.simulation.engine.Simulator` (one trial's worth);
* :func:`build` is the ``spec -> Simulator`` convenience;
* :func:`run` executes every trial of the spec's
  :class:`~repro.scenarios.spec.RunPolicy` and reduces the traces to a
  :class:`RunResult` (aggregate metrics + optional per-trial traces +
  ``perf_stats``);
* :func:`run_many` fans a dotted-path override grid out over the
  :class:`~repro.analysis.sweep.ParallelSweepRunner` -- workers receive the
  **serialized spec** (JSON text shipped once through the pool's ``common``
  mapping) plus each point's overrides, never pickled closures -- and
  preloads worker scheduler-delta caches with tables prebuilt (and optionally
  disk-cached) under each variant spec's
  :meth:`~repro.scenarios.spec.ScenarioSpec.fingerprint`.

The raw :class:`~repro.simulation.engine.Simulator` constructor remains the
supported low-level escape hatch for experiments whose wiring a spec cannot
express (hand-built process populations, adaptive environments, mid-run graph
mutation); everything a spec *can* express behaves identically either way --
:func:`build` produces byte-identical traces to the equivalent hand
construction.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.sweep import (
    SCHEDULER_DELTA_TABLE_KWARG,
    ParallelSweepRunner,
    SweepResult,
    derive_point_seed,
    iter_grid_points,
)
from repro.dualgraph.adversary import prebuild_scheduler_deltas
from repro.scenarios import components as _components  # noqa: F401  (populates registries)
from repro.scenarios.metrics import (
    MetricContext,
    aggregate_metric_rows,
    evaluate_metrics,
    flatten_aggregates,
    is_metric_column,
    required_trace_mode,
)
from repro.scenarios.registry import ALGORITHMS, ENVIRONMENTS, SCHEDULERS, TOPOLOGIES
from repro.scenarios.spec import ScenarioSpec
from repro.simulation.engine import Simulator
from repro.simulation.metrics import ack_delays
from repro.simulation.trace import ExecutionTrace, TraceMode


@dataclass
class BuiltScenario:
    """One trial's worth of live objects materialized from a spec."""

    spec: ScenarioSpec
    trial_index: int
    trial_seed: int
    graph: Any
    embedding: Any
    processes: Dict[Hashable, Any]
    params: Any
    scheduler: Any
    environment: Any
    simulator: Simulator
    total_rounds: int
    algorithm_build: Any


def _resolve_total_rounds(spec: ScenarioSpec, build) -> int:
    policy = spec.run
    unit = policy.rounds_unit
    if unit == "rounds":
        return policy.rounds
    lengths = {
        "phases": build.phase_length,
        "tack": build.tack_rounds,
        "algorithm": build.natural_rounds,
    }
    length = lengths[unit]
    if length is None:
        raise ValueError(
            f"rounds_unit={unit!r} needs the {spec.algorithm.name!r} algorithm to "
            "report that length; use rounds_unit='rounds' for this algorithm"
        )
    return policy.rounds * length


def resolve_trace_mode(spec: ScenarioSpec) -> TraceMode:
    """The :class:`TraceMode` a spec's trials record under.

    Explicit engine modes are taken verbatim (and validated against the
    declared metrics at evaluation time); ``engine.trace_mode="auto"``
    resolves to the cheapest mode covering every metric in ``spec.metrics``
    (``FULL`` when the spec declares none).
    """
    if spec.engine.is_auto_trace_mode:
        return required_trace_mode(spec.metrics)
    return spec.engine.trace_mode_enum


def resolve_params(spec: ScenarioSpec, trial_index: int = 0, graph: Any = None):
    """Resolve one trial's derived algorithm build **without processes**.

    Uses the algorithm builder's params-only resolution mode when it declares
    one (see :meth:`repro.scenarios.registry.Registry.supports_params_only`),
    falling back to a full build otherwise.  ``graph`` lets callers that have
    already sampled the trial's topology skip resampling it.

    This is what lets a spec that needs a derived quantity to finish its own
    configuration -- e.g. a burst period in phase-length units -- ask for the
    params without materializing a throwaway process population
    (``examples/sensor_field_monitoring.py`` does exactly that).
    """
    trial_seed = spec.run.trial_seed(trial_index)
    if graph is None:
        graph, _ = TOPOLOGIES.get(spec.topology.name)(trial_seed, **spec.topology.args)
    builder = ALGORITHMS.get(spec.algorithm.name)
    rng = random.Random(trial_seed)
    if ALGORITHMS.supports_params_only(spec.algorithm.name):
        return builder(graph, rng, params_only=True, **spec.algorithm.args)
    return builder(graph, rng, **spec.algorithm.args)


def materialize(spec: ScenarioSpec, trial_index: int = 0) -> BuiltScenario:
    """Resolve one trial of a spec into live objects (without running it).

    Construction order (topology, then algorithm processes from a fresh
    ``random.Random(trial_seed)``, then scheduler, then environment) is part
    of the determinism contract: a spec-built simulator is byte-identical to
    the equivalent hand construction that follows the same order (the
    convention used throughout the examples and benchmarks).
    """
    trial_seed = spec.run.trial_seed(trial_index)

    topology_builder = TOPOLOGIES.get(spec.topology.name)
    graph, embedding = topology_builder(trial_seed, **spec.topology.args)

    algorithm_builder = ALGORITHMS.get(spec.algorithm.name)
    rng = random.Random(trial_seed)
    build = algorithm_builder(graph, rng, **spec.algorithm.args)

    scheduler_builder = SCHEDULERS.get(spec.scheduler.name)
    scheduler_kwargs: Dict[str, Any] = {}
    if SCHEDULERS.supports_traffic(spec.scheduler.name):
        # Traffic-aware schedulers (declared via a `traffic` keyword; see
        # Registry.supports_traffic) get the scenario's TrafficSpec so their
        # slot frames can be sized from the declared arrival forecast.
        scheduler_kwargs["traffic"] = spec.traffic
    scheduler = scheduler_builder(
        graph, trial_seed, **scheduler_kwargs, **spec.scheduler.args
    )

    environment_builder = ENVIRONMENTS.get(spec.environment.name)
    environment_kwargs: Dict[str, Any] = {}
    if ENVIRONMENTS.supports_embedding(spec.environment.name):
        # Embedding-aware environments (declared via an `embedding` keyword;
        # see Registry.supports_embedding) get the topology's embedding so
        # sender selections can place themselves geometrically.
        environment_kwargs["embedding"] = embedding
    if ENVIRONMENTS.supports_traffic(spec.environment.name):
        environment_kwargs["traffic"] = spec.traffic
    if ENVIRONMENTS.supports_trial_seed(spec.environment.name):
        environment_kwargs["trial_seed"] = trial_seed
    environment = environment_builder(
        graph, **environment_kwargs, **spec.environment.args
    )

    engine = spec.engine
    simulator = Simulator(
        graph,
        build.processes,
        scheduler=scheduler,
        environment=environment,
        trace_mode=resolve_trace_mode(spec),
        fast_path=engine.fast_path,
        vector_path=engine.vector_path,
        batch_path=engine.batch_path,
        kernel=engine.kernel,
        profile=engine.profile,
    )
    return BuiltScenario(
        spec=spec,
        trial_index=trial_index,
        trial_seed=trial_seed,
        graph=graph,
        embedding=embedding,
        processes=build.processes,
        params=build.params,
        scheduler=scheduler,
        environment=environment,
        simulator=simulator,
        total_rounds=_resolve_total_rounds(spec, build),
        algorithm_build=build,
    )


def build(spec: ScenarioSpec) -> Simulator:
    """``spec -> Simulator`` for trial 0 (the declarative front door)."""
    return materialize(spec).simulator


@dataclass
class TrialRunResult:
    """One executed trial: summary metrics plus (optionally) the live objects."""

    trial_index: int
    seed: int
    rounds: int
    metrics: Dict[str, Any]
    trace: Optional[ExecutionTrace] = None
    simulator: Optional[Simulator] = None
    graph: Any = None
    params: Any = None
    environment: Any = None
    # Which engine lane actually ran and (when the counters lane did not
    # engage) the first disqualifying reason -- captured before the simulator
    # is dropped under keep=False, surfaced via perf_stats.  Deterministic
    # for a given host/install, so excluded from to_dict()'s metric payload.
    lane: Optional[Dict[str, Any]] = None

    @property
    def metric_row(self) -> Dict[str, Any]:
        """Only the declared-metric columns (``"<metric>.<key>"``).

        These are deterministic -- no wall-clock timing -- so the row is
        byte-identical whether the trial ran serially, on a ``run(jobs=...)``
        pool, or inside a suite worker.
        """
        return {k: v for k, v in self.metrics.items() if is_metric_column(k)}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trial_index": self.trial_index,
            "seed": self.seed,
            "rounds": self.rounds,
            "metrics": dict(self.metrics),
        }


@dataclass
class RunResult:
    """The outcome of :func:`run`: per-trial records plus aggregate metrics.

    ``metrics`` carries the flat aggregate row (legacy counter totals plus
    one representative value per declared-metric column);
    ``metric_summaries`` carries the full per-column statistics from
    :func:`repro.scenarios.metrics.aggregate_metric_rows` -- mean / std /
    quantiles for plain columns, pooled values with Wilson intervals for
    declared ratio / rate columns.
    """

    spec: ScenarioSpec
    fingerprint: str
    trials: List[TrialRunResult] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    metric_summaries: Dict[str, Dict[str, float]] = field(default_factory=dict)
    # Timing sections (floats, summed across trials) plus the engine-lane
    # report: "lane" (the lane that actually ran) and "lane_fallback" (why
    # the counters-only lane did not engage; None when it did).
    perf_stats: Dict[str, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        """Non-empty iff at least one trial ran at least one round."""
        return any(t.rounds > 0 for t in self.trials)

    @property
    def metric_rows(self) -> List[Dict[str, Any]]:
        """The per-trial declared-metric rows, in trial order."""
        return [t.metric_row for t in self.trials]

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable summary (no traces / simulators)."""
        data = {
            "scenario": self.spec.to_dict(),
            "fingerprint": self.fingerprint,
            "trials": [t.to_dict() for t in self.trials],
            "metrics": dict(self.metrics),
            "perf_stats": dict(self.perf_stats),
        }
        if self.metric_summaries:
            data["metric_summaries"] = {
                key: dict(entry) for key, entry in self.metric_summaries.items()
            }
        return data

    def to_row(self) -> Dict[str, Any]:
        """A flat record for sweep tables (aggregate metrics only)."""
        row = {"scenario": self.spec.name, "fingerprint": self.fingerprint}
        row.update(self.metrics)
        return row


def _trial_metrics(trace: ExecutionTrace, rounds: int, elapsed: float) -> Dict[str, Any]:
    counts = trace.event_counts
    metrics: Dict[str, Any] = {
        "rounds": rounds,
        "elapsed_s": elapsed,
        "rounds_per_s": rounds / elapsed if elapsed > 0 else 0.0,
        "transmissions": trace.num_transmissions,
        "receptions": trace.num_receptions,
        "bcasts": counts["bcast"],
        "acks": counts["ack"],
        "recvs": counts["recv"],
        "decides": counts["decide"],
    }
    if trace.mode is not TraceMode.COUNTERS and counts["ack"]:
        delays = [r.delay for r in ack_delays(trace) if r.delay is not None]
        if delays:
            metrics["ack_delay_mean"] = sum(delays) / len(delays)
            metrics["ack_delay_max"] = max(delays)
    return metrics


def run_trial(spec: ScenarioSpec, trial_index: int, keep: bool = True) -> TrialRunResult:
    """Execute exactly one trial of a spec.

    Builds the trial (:func:`materialize`), runs it, computes the built-in
    counter metrics plus every declared metric
    (:func:`repro.scenarios.metrics.evaluate_metrics`, namespaced columns
    merged into ``metrics``).  This single code path backs the serial
    :func:`run` loop, the per-trial worker pool (``run(jobs=...)``), and the
    suite runner -- which is why their metric rows are identical.
    """
    built = materialize(spec, trial_index)
    start = time.perf_counter()
    trace = built.simulator.run(built.total_rounds)
    elapsed = time.perf_counter() - start
    metrics = _trial_metrics(trace, built.total_rounds, elapsed)
    if spec.metrics:
        ctx = MetricContext(
            trace=trace,
            graph=built.graph,
            params=built.params,
            spec=spec,
            trial_index=trial_index,
            seed=built.trial_seed,
            rounds=built.total_rounds,
            environment=built.environment,
            algorithm_build=built.algorithm_build,
            embedding=built.embedding,
        )
        metrics.update(evaluate_metrics(spec.metrics, ctx))
    return TrialRunResult(
        trial_index=trial_index,
        seed=built.trial_seed,
        rounds=built.total_rounds,
        metrics=metrics,
        trace=trace if keep else None,
        # Profiling runs keep the simulator even under keep=False: its
        # perf_stats sections are the whole point of profile=True.
        simulator=built.simulator if keep or spec.engine.profile else None,
        graph=built.graph if keep else None,
        params=built.params if keep else None,
        environment=built.environment if keep else None,
        lane={
            "lane": built.simulator.lane,
            "lane_fallback": built.simulator.lane_fallback,
        },
    )


def trial_record(spec: ScenarioSpec, trial_index: int) -> Dict[str, Any]:
    """Execute one trial and return its plain-data (picklable) record.

    :meth:`TrialRunResult.to_dict` plus the simulator's perf sections when
    profiling -- the wire format every per-trial worker returns
    (:func:`run_spec_trial` here, ``run_suite_task`` in the suite runner) and
    :func:`absorb_trial_record` consumes.
    """
    trial = run_trial(spec, trial_index, keep=False)
    record = trial.to_dict()
    # The lane report travels with every record (it is how a silent fallback
    # -- e.g. QueuedEnvironment's _on_recv hook dropping a traffic workload
    # off the counters lane -- becomes visible in RunResult.perf_stats);
    # profiling merges its timing sections alongside.
    perf: Dict[str, Any] = dict(trial.lane or {})
    if spec.engine.profile and trial.simulator is not None:
        perf.update(trial.simulator.perf_stats)
    record["perf_stats"] = perf
    return record


def absorb_trial_record(result: RunResult, record: Mapping[str, Any]) -> None:
    """Append one :func:`trial_record` to a :class:`RunResult` (the pool-side
    counterpart: reconstructs the :class:`TrialRunResult` and accumulates the
    perf sections)."""
    result.trials.append(
        TrialRunResult(
            trial_index=record["trial_index"],
            seed=record["seed"],
            rounds=record["rounds"],
            metrics=dict(record["metrics"]),
        )
    )
    for section, value in record.get("perf_stats", {}).items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            # Lane identity (strings / None): identical across a spec's
            # trials, so plain assignment -- summing would be nonsense.
            result.perf_stats[section] = value
        else:
            result.perf_stats[section] = result.perf_stats.get(section, 0.0) + value


def run_spec_trial(
    spec_json: Optional[str] = None, trial_index: int = 0
) -> Dict[str, Any]:
    """Worker target for per-trial parallelism (module-level, hence picklable).

    Like :func:`run_spec_point`, workers receive the serialized spec -- never
    live objects or closures -- plus one trial index, and return the trial's
    :func:`trial_record`.
    """
    if spec_json is None:
        raise ValueError("run_spec_trial needs the serialized spec (spec_json)")
    return trial_record(ScenarioSpec.from_json(spec_json), trial_index)


def _aggregate(result: RunResult) -> None:
    """Fill ``result.metrics`` / ``result.metric_summaries`` from its trials."""
    totals: Dict[str, float] = {}
    for trial in result.trials:
        for key, value in trial.metrics.items():
            if is_metric_column(key):
                continue
            if isinstance(value, (int, float)):
                totals[key] = totals.get(key, 0.0) + value
    aggregate: Dict[str, Any] = {"trials": len(result.trials)}
    for key in ("rounds", "transmissions", "receptions", "bcasts", "acks", "recvs", "decides"):
        aggregate[key] = int(totals.get(key, 0))
    aggregate["elapsed_s"] = totals.get("elapsed_s", 0.0)
    aggregate["rounds_per_s"] = (
        aggregate["rounds"] / aggregate["elapsed_s"] if aggregate["elapsed_s"] > 0 else 0.0
    )
    delay_means = [
        t.metrics["ack_delay_mean"] for t in result.trials if "ack_delay_mean" in t.metrics
    ]
    if delay_means:
        aggregate["ack_delay_mean"] = sum(delay_means) / len(delay_means)
        aggregate["ack_delay_max"] = max(
            t.metrics["ack_delay_max"] for t in result.trials if "ack_delay_max" in t.metrics
        )
    if result.spec.metrics:
        result.metric_summaries = aggregate_metric_rows(
            result.spec.metrics, [t.metric_row for t in result.trials]
        )
        aggregate.update(flatten_aggregates(result.metric_summaries))
    result.metrics = aggregate


def run(
    spec: ScenarioSpec,
    keep: bool = True,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    prebuild: bool = True,
    store: Any = None,
) -> RunResult:
    """Execute every trial of the spec and aggregate the results.

    ``keep=True`` (default) retains each trial's trace, simulator, graph and
    derived params on the :class:`TrialRunResult` -- what the examples and
    benchmark harnesses consume.  ``keep=False`` drops the live objects
    (sweep workers and the CLI JSON output need only the metrics).

    ``jobs`` above 1 fans the spec's trials out over a
    :class:`~repro.analysis.sweep.ParallelSweepRunner` process pool (workers
    receive the serialized spec through :func:`run_spec_trial`); this forces
    ``keep=False`` -- live traces do not cross process boundaries -- and
    produces metric rows byte-identical to the serial path, in trial order.
    As in :func:`run_many`, the spec's scheduler-delta table is then prebuilt
    once in the parent (when cacheable and shared across trials; optionally
    disk-backed under ``cache_dir``) and shipped to every worker instead of
    being re-hashed per process; ``prebuild=False`` skips that for sparse
    workloads.  Serial runs share the process-wide delta cache already.

    ``store`` (a :class:`~repro.scenarios.store.ResultStore` or its root
    path) consults the content-addressed result store before dispatching each
    trial and writes every computed trial record back on completion: a trial
    whose key (content identity + seed + metrics signature; see
    :func:`repro.scenarios.store.trial_key`) is already stored is absorbed
    from the cached record instead of re-executing, with metric rows
    byte-identical to a fresh run.  Like ``jobs``, a store runs in record
    mode -- live traces are not retained regardless of ``keep``.
    """
    from repro.scenarios.store import ResultStore

    store = ResultStore.coerce(store)
    result = RunResult(spec=spec, fingerprint=spec.fingerprint())
    pooled = jobs is not None and jobs > 1 and spec.run.trials > 1
    if store is None and not pooled:
        for trial_index in range(spec.run.trials):
            trial = run_trial(spec, trial_index, keep=keep)
            result.trials.append(trial)
            if trial.lane:
                result.perf_stats.update(trial.lane)
            if spec.engine.profile and trial.simulator is not None:
                for section, seconds in trial.simulator.perf_stats.items():
                    result.perf_stats[section] = result.perf_stats.get(section, 0.0) + seconds
        _aggregate(result)
        return result

    records: Dict[int, Mapping[str, Any]] = {}
    if store is not None:
        for trial_index in range(spec.run.trials):
            hit = store.get(spec, trial_index)
            if hit is not None:
                records[trial_index] = hit
    pending = [i for i in range(spec.run.trials) if i not in records]

    if pooled and len(pending) > 1:
        common: Dict[str, Any] = {"spec_json": spec.to_json(indent=None)}
        if prebuild:
            try:
                table = prebuild_delta_table(spec, cache_dir=cache_dir)
            except (KeyError, TypeError, ValueError):
                table = None  # a broken spec fails loudly in the workers
            if table:
                common[SCHEDULER_DELTA_TABLE_KWARG] = table
        runner = ParallelSweepRunner(jobs=jobs)
        rows = runner.run({"trial_index": pending}, run_spec_trial, common=common)
        for row in rows:
            records[row["trial_index"]] = row
    else:
        for trial_index in pending:
            records[trial_index] = trial_record(spec, trial_index)

    if store is not None:
        for trial_index in pending:
            store.put(spec, trial_index, records[trial_index])
    for trial_index in range(spec.run.trials):
        absorb_trial_record(result, records[trial_index])
    _aggregate(result)
    return result


# ----------------------------------------------------------------------
# delta-table prebuilding (spec-keyed, optionally disk-backed)
# ----------------------------------------------------------------------
def _delta_identity(spec: ScenarioSpec) -> str:
    """Canonical identity of the delta table a spec's variant would prebuild.

    Two grid variants that differ only in fields the table does not depend on
    (environment, trace mode, name, trial count, ...) map to the same
    identity, so :func:`run_many` computes their shared table once.  The
    identity covers the topology and scheduler specs, the engine's fast-path
    eligibility, the seed root (``master_seed`` + ``seed_policy`` determine
    trial 0's seed), and the round budget -- including the algorithm spec
    exactly when the round unit derives the budget from it.
    """
    from repro.scenarios.spec import _json_canonical

    payload: Dict[str, Any] = {
        "topology": spec.topology.to_dict(),
        "scheduler": spec.scheduler.to_dict(),
        "fast": spec.engine.fast_path and spec.engine.vector_path,
        "master_seed": spec.run.master_seed,
        "seed_policy": spec.run.seed_policy,
        "rounds": spec.run.rounds,
        "rounds_unit": spec.run.rounds_unit,
    }
    if spec.run.rounds_unit != "rounds":
        payload["algorithm"] = spec.algorithm.to_dict()
    if spec.traffic is not None and SCHEDULERS.supports_traffic(spec.scheduler.name):
        # A traffic-aware scheduler's slot frame depends on the declared
        # workload forecast; traffic-agnostic schedulers keep sharing tables
        # across load grid points.
        payload["traffic"] = spec.traffic.to_dict()
    return _json_canonical(payload)


def _component_rerandomizes_per_trial(registry, component) -> bool:
    """Whether a component's sample differs from trial to trial.

    True exactly when the builder declared itself trial-seeded at
    registration (see :meth:`~repro.scenarios.registry.Registry.register`)
    and the spec does not pin an explicit ``seed`` argument -- the rule holds
    for downstream-registered components too, with no name lists to maintain.
    """
    return registry.is_trial_seeded(component.name) and "seed" not in component.args


def prebuild_delta_table(
    spec: ScenarioSpec,
    rounds: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> Optional[Dict[Tuple[Hashable, int], Tuple[int, ...]]]:
    """Prebuild (or load) the spec's scheduler-delta table, or ``None``.

    Builds trial 0's topology and scheduler, asks the scheduler for its
    :meth:`~repro.dualgraph.adversary.LinkScheduler.delta_cache_key`, and --
    when the deltas are cacheable -- computes rounds ``1..rounds`` through
    :func:`repro.dualgraph.adversary.prebuild_scheduler_deltas`, keyed on
    disk (under ``cache_dir``) by ``spec.fingerprint()``.  Returns ``None``
    for non-cacheable schedulers (adaptive adversaries, unkeyed subclasses),
    for engines that bypass the delta interface (``fast_path=False``), and
    for multi-trial specs whose topology or scheduler re-randomizes per trial
    (their per-trial delta streams have distinct cache keys, so a trial-0
    table would mostly miss).

    No process population is constructed: literal round budgets never touch
    the algorithm, and derived budgets (``"phases"`` / ``"tack"`` /
    ``"algorithm"``) resolve through :func:`resolve_params` -- the builder's
    params-only mode -- against the already-sampled topology (one topology
    sample per call, never a throwaway simulator).
    """
    if not (spec.engine.fast_path and spec.engine.vector_path):
        return None
    if spec.run.trials > 1 and spec.run.seed_policy != "fixed":
        if _component_rerandomizes_per_trial(TOPOLOGIES, spec.topology):
            return None
        if _component_rerandomizes_per_trial(SCHEDULERS, spec.scheduler):
            return None
    trial_seed = spec.run.trial_seed(0)
    graph, _ = TOPOLOGIES.get(spec.topology.name)(trial_seed, **spec.topology.args)
    scheduler_kwargs: Dict[str, Any] = {}
    if SCHEDULERS.supports_traffic(spec.scheduler.name):
        # Must mirror materialize(): a traffic-aware scheduler built without
        # the workload forecast would prebuild a different slot schedule.
        scheduler_kwargs["traffic"] = spec.traffic
    scheduler = SCHEDULERS.get(spec.scheduler.name)(
        graph, trial_seed, **scheduler_kwargs, **spec.scheduler.args
    )
    if scheduler.delta_cache_key() is None:
        return None
    if rounds is None:
        if spec.run.rounds_unit == "rounds":
            rounds = spec.run.rounds
        else:
            # Params-only resolution: derived round lengths without a
            # throwaway process population (falls back to a full build only
            # for algorithms that never declared the mode).
            algorithm_build = resolve_params(spec, graph=graph)
            rounds = _resolve_total_rounds(spec, algorithm_build)
    return prebuild_scheduler_deltas(
        scheduler,
        rounds,
        cache_dir=cache_dir,
        cache_key=spec.fingerprint(),
    )


# ----------------------------------------------------------------------
# sweep dispatch: serialized specs, never closures
# ----------------------------------------------------------------------
def run_spec_point(
    spec_json: Optional[str] = None,
    seed: Optional[int] = None,
    store: Optional[str] = None,
    **overrides: Any,
) -> Dict[str, Any]:
    """Worker target for :func:`run_many` (module-level, hence picklable).

    ``spec_json`` is the base spec's serialized form (shipped once per worker
    through the sweep's ``common`` mapping); ``overrides`` are one grid
    point's dotted-path values; ``seed``, when the runner injects one,
    replaces the run policy's master seed.  ``store``, when set, is the root
    path of a content-addressed :class:`~repro.scenarios.store.ResultStore`
    consulted per trial (workers share one handle per process via
    :meth:`~repro.scenarios.store.ResultStore.shared`).  The worker never
    receives live objects or closures -- reconstruction happens entirely from
    data.
    """
    if spec_json is None:
        raise ValueError("run_spec_point needs the serialized spec (spec_json)")
    spec = ScenarioSpec.from_json(spec_json)
    if overrides:
        spec = spec.with_overrides(overrides)
    if seed is not None:
        spec = spec.with_overrides({"run.master_seed": seed})
    handle = None
    if store is not None:
        from repro.scenarios.store import ResultStore

        handle = ResultStore.shared(store)
    return run(spec, keep=False, store=handle).to_row()


def run_many(
    spec: ScenarioSpec,
    overrides_grid: Optional[Mapping[str, Sequence[Any]]] = None,
    jobs: Optional[int] = None,
    base_seed: Optional[int] = None,
    cache_dir: Optional[str] = None,
    prebuild: bool = True,
    store: Any = None,
) -> SweepResult:
    """Run a grid of spec variants, serially or on a process pool.

    Parameters
    ----------
    overrides_grid:
        Dotted-path -> value sequence, e.g.
        ``{"scheduler.args.probability": [0.25, 0.5, 0.75]}``.  Each grid
        point yields one row (the overrides plus the variant's aggregate
        metrics), in canonical grid order regardless of worker count.
    jobs:
        Worker processes (``None`` = all cores; <2 = serial), exactly as
        :class:`~repro.analysis.sweep.ParallelSweepRunner` interprets it.
    base_seed:
        When given, each grid point's ``run.master_seed`` is replaced by a
        derived per-point seed (stable across worker counts).
    cache_dir:
        Directory for on-disk scheduler-delta tables; repeated invocations of
        the same sweep then skip the per-round schedule hashing entirely.
    prebuild:
        Prebuild each cacheable variant's delta table in the parent and ship
        the merged table to workers through the sweep runner's reserved
        ``scheduler_delta_table`` kwarg (set ``False`` to skip the upfront
        cost for short exploratory sweeps).
    store:
        A content-addressed :class:`~repro.scenarios.store.ResultStore` (or
        its root path): each variant's trials are looked up before executing
        and written back after, so re-running a sweep -- or a sweep that
        shares grid points with an earlier one -- recomputes only unseen
        trials.  Workers receive the store's root path and reattach via
        :meth:`~repro.scenarios.store.ResultStore.shared`.
    """
    from repro.scenarios.store import ResultStore

    store = ResultStore.coerce(store)
    grid = dict(overrides_grid or {})
    common: Dict[str, Any] = {"spec_json": spec.to_json(indent=None)}
    if store is not None:
        common["store"] = str(store.root)

    if prebuild:
        # Prebuild against the exact spec each worker will run: the runner
        # replaces run.master_seed with a derived per-point seed when
        # base_seed is set (see run_spec_point), and a table keyed under the
        # original seed would never hit.
        merged: Dict[Tuple[Hashable, int], Tuple[int, ...]] = {}
        seen_identities = set()
        for index, point in enumerate(iter_grid_points(grid)):
            try:
                variant = spec.with_overrides(point)
                if base_seed is not None:
                    variant = variant.with_overrides(
                        {"run.master_seed": derive_point_seed(base_seed, index)}
                    )
                # Variants differing only in table-irrelevant fields (the
                # environment, trace mode, trial count, ...) share one table;
                # compute it once.
                identity = _delta_identity(variant)
                if identity in seen_identities:
                    continue
                seen_identities.add(identity)
                table = prebuild_delta_table(variant, cache_dir=cache_dir)
            except (KeyError, TypeError, ValueError):
                # An invalid point fails loudly when it actually runs; the
                # prebuild pass is best-effort.
                continue
            if table:
                merged.update(table)
        if merged:
            common[SCHEDULER_DELTA_TABLE_KWARG] = merged

    runner = ParallelSweepRunner(jobs=jobs, base_seed=base_seed)
    return runner.run(grid, run_spec_point, common=common)
