"""The scenario service's async job queue: dedup, durability, retry, shutdown.

:class:`JobManager` is the serving-layer core behind ``python -m repro serve``
(:mod:`repro.scenarios.service` puts HTTP in front of it).  It accepts
:class:`~repro.scenarios.suite.SuiteSpec` submissions and guarantees:

* **in-flight dedup** -- a submission whose suite fingerprint matches a
  queued or running job *attaches* to that job instead of enqueuing a second
  execution; every attached client observes the same progress stream and the
  same report bytes;
* **at-rest dedup** -- a submission whose fingerprint already has a
  persisted report under the store (``<store>/suite/<fp>/report.json``) is
  answered instantly from that file, byte for byte, with zero trials
  recomputed;
* **durability** -- accepted jobs are journaled (fsynced) to
  ``<store>/service/jobs.jsonl`` *before* the submission is acknowledged,
  and executions run with the PR-7 fsynced checkpoint plus the
  content-addressed :class:`~repro.scenarios.store.ResultStore`, so a killed
  server loses at most the in-flight trials: :meth:`JobManager.recover`
  re-enqueues every accepted-but-unfinished job on startup and the resumed
  execution serves finished trials from checkpoint/store;
* **robustness** -- a crashed or timed-out execution attempt is retried with
  exponential backoff up to ``retries`` times, each attempt resuming from
  the previous one's checkpoint; cooperative cancellation and graceful
  shutdown ride the :class:`~repro.scenarios.suite.SuiteCancelled` hook
  (shutdown re-queues the interrupted job *without* journaling completion,
  so the next server run picks it up).

Execution itself is :func:`repro.scenarios.suite.run_suite` on a bounded
pool of worker tasks; each worker drives one suite at a time in a thread
(keeping the asyncio loop free), optionally fanning that suite's trials out
over the :class:`~repro.analysis.sweep.ParallelSweepRunner` process pool via
the ``jobs`` option.

Fault injection (test harness)
------------------------------
The ``REPRO_SERVICE_FAULT`` environment variable arms a deliberately broken
execution path for the fault-injection tests (``tests/service/``):

* ``crash:N`` -- the *first* attempt of each job raises after ``N`` executed
  tasks (exercises retry + checkpoint resume inside one server life);
* ``exit:N`` -- the process hard-exits (``os._exit``) after ``N`` executed
  tasks, once per process (exercises server kill + journal recovery).

Production deployments leave the variable unset.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.scenarios.spec import ScenarioSpec, _reject_unknown_keys
from repro.scenarios.store import ResultStore
from repro.scenarios.suite import (
    SuiteCancelled,
    SuiteEntry,
    SuiteSpec,
    _flatten_tasks,
    run_suite,
)

#: Terminal job states (a job in one of these never changes again).
#: ``rejected`` is the backpressure outcome: the submission was refused at
#: the door (HTTP 429), never journaled, never enqueued.
TERMINAL_STATES = ("done", "failed", "cancelled", "rejected")
JOB_STATES = ("queued", "running") + TERMINAL_STATES

#: Submission options accepted by :func:`parse_submission`.
_SUBMIT_OPTION_KEYS = ("jobs", "prebuild", "fleet")


class JobRejected(ValueError):
    """A submission payload the service refuses (maps to HTTP 400)."""


@dataclass
class FaultPlan:
    """Parsed ``REPRO_SERVICE_FAULT`` plan (see the module docstring)."""

    kind: str  # "crash" | "exit"
    after_tasks: int

    @classmethod
    def from_env(cls, value: Optional[str]) -> Optional["FaultPlan"]:
        if not value:
            return None
        kind, sep, after = value.partition(":")
        if kind not in ("crash", "exit") or not sep:
            raise ValueError(
                f"REPRO_SERVICE_FAULT must look like 'crash:N' or 'exit:N', got {value!r}"
            )
        return cls(kind=kind, after_tasks=int(after))


class InjectedFault(RuntimeError):
    """Raised by the ``crash:N`` fault plan (a stand-in for a worker crash)."""


def parse_submission(payload: Any) -> Tuple[SuiteSpec, Dict[str, Any]]:
    """Validate a submission body into ``(suite, options)``.

    The body is a JSON object carrying exactly one of ``"suite"`` (a suite
    manifest in its fully-inline form) or ``"scenario"`` (a single scenario
    spec, wrapped into a one-entry suite named after it), plus an optional
    ``"options"`` object (``jobs``: per-suite worker processes, ``prebuild``:
    scheduler-delta prebuild toggle, ``fleet``: dispatch across N OS worker
    processes via :func:`repro.scenarios.fleet.run_suite_fleet`).  Anything
    else -- unknown keys, both or
    neither spec forms, malformed spec trees -- raises :class:`JobRejected`
    with the underlying validation message, which the HTTP layer returns as
    the 400 error body.
    """
    if not isinstance(payload, Mapping):
        raise JobRejected(
            f"submission body must be a JSON object, got {type(payload).__name__}"
        )
    try:
        _reject_unknown_keys(payload, ("suite", "scenario", "options"), "job submission")
        if ("suite" in payload) == ("scenario" in payload):
            raise JobRejected(
                "job submission needs exactly one of 'suite' or 'scenario'"
            )
        if "suite" in payload:
            suite = SuiteSpec.from_dict(payload["suite"])
        else:
            spec = ScenarioSpec.from_dict(payload["scenario"])
            suite = SuiteSpec(
                name=f"scenario:{spec.name}",
                entries=(SuiteEntry(id=spec.name, scenario=spec),),
            )
        options = dict(payload.get("options", {}) or {})
        _reject_unknown_keys(options, _SUBMIT_OPTION_KEYS, "submission options")
        if "jobs" in options:
            options["jobs"] = int(options["jobs"])
            if options["jobs"] < 1:
                raise JobRejected("options.jobs must be a positive integer")
        if "prebuild" in options:
            if not isinstance(options["prebuild"], bool):
                raise JobRejected("options.prebuild must be a boolean")
        if "fleet" in options:
            options["fleet"] = int(options["fleet"])
            if options["fleet"] < 1:
                raise JobRejected("options.fleet must be a positive integer")
    except JobRejected:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise JobRejected(str(exc)) from None
    return suite, options


@dataclass
class Job:
    """One accepted suite execution (or a cache-served stand-in for one)."""

    id: str
    suite: SuiteSpec
    fingerprint: str
    options: Dict[str, Any] = field(default_factory=dict)
    state: str = "queued"
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    error: Optional[str] = None
    #: Latest progress snapshot (the last "plan"/"task" event's payload).
    progress: Dict[str, Any] = field(default_factory=dict)
    #: How this job came to be: "submit", "recovered" (journal replay), or
    #: "cache" (synthetic done-job fronting a persisted report).
    origin: str = "submit"
    cancel_requested: bool = False
    #: Live event queues of attached ``/events`` streams.
    subscribers: List[asyncio.Queue] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def task_count(self) -> int:
        return len(_flatten_tasks(self.suite))

    def describe(self) -> Dict[str, Any]:
        """The JSON descriptor the HTTP API serves for this job."""
        return {
            "id": self.id,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "suite": {
                "name": self.suite.name,
                "entries": len(self.suite.entries),
                "tasks": self.task_count,
            },
            "options": dict(self.options),
            "origin": self.origin,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "error": self.error,
            "progress": dict(self.progress),
            "cancel_requested": self.cancel_requested,
        }


class JobManager:
    """The asyncio job queue: bounded workers over durable, deduped jobs.

    Parameters
    ----------
    store:
        A :class:`~repro.scenarios.store.ResultStore` (or its root path).
        Required: it provides at-rest dedup, the report cache, the job
        journal's home, and trial-level caching for resumed executions.
    workers:
        Concurrent suite executions (asyncio worker tasks, each driving one
        blocking :func:`~repro.scenarios.suite.run_suite` in a thread).
    retries:
        Extra execution attempts after a crashed/timed-out first attempt.
    backoff_s:
        First retry delay; doubles per subsequent attempt.
    timeout_s:
        Per-attempt wall-clock budget (``None`` = unlimited).  A timed-out
        attempt is cancelled cooperatively and retried from its checkpoint.
    default_jobs / default_prebuild:
        Per-suite execution defaults when a submission carries no options.
    fleet_workers / fleet_threshold:
        When ``fleet_workers >= 2``, any job whose flattened task count is at
        least ``fleet_threshold`` executes through
        :func:`repro.scenarios.fleet.run_suite_fleet` across that many OS
        worker processes (with crash-safe work-stealing leases) instead of
        the in-process pool; submissions can force or resize this per job
        with ``options.fleet``.
    max_pending_tasks:
        Queue-depth backpressure: a submission whose tasks would push the
        total pending-task backlog (queued + running jobs) past this bound
        is *rejected* -- a terminal ``"rejected"`` job the HTTP layer maps
        to 429, never journaled or enqueued.  ``None`` disables the bound.
    """

    def __init__(
        self,
        store: Any,
        workers: int = 2,
        retries: int = 2,
        backoff_s: float = 0.25,
        timeout_s: Optional[float] = None,
        default_jobs: int = 1,
        default_prebuild: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        fleet_workers: int = 0,
        fleet_threshold: int = 32,
        max_pending_tasks: Optional[int] = None,
    ) -> None:
        coerced = ResultStore.coerce(store)
        if coerced is None:
            raise ValueError("JobManager needs a result store (got None)")
        self.store = coerced
        self.workers = max(1, int(workers))
        self.retries = max(0, int(retries))
        self.backoff_s = max(0.0, float(backoff_s))
        self.timeout_s = timeout_s
        self.default_jobs = max(1, int(default_jobs))
        self.default_prebuild = bool(default_prebuild)
        self.fault_plan = fault_plan
        self.fleet_workers = max(0, int(fleet_workers))
        self.fleet_threshold = max(1, int(fleet_threshold))
        self.max_pending_tasks = (
            None if max_pending_tasks is None else max(1, int(max_pending_tasks))
        )
        self._fleet_active: set = set()  # job ids currently executing via fleet
        self.started_at = time.time()
        self.stopping = False

        self.jobs: "Dict[str, Job]" = {}
        self._inflight: Dict[str, Job] = {}  # fingerprint -> queued/running job
        self._latest_by_fp: Dict[str, Job] = {}  # fingerprint -> most recent job
        self._ids = itertools.count(1)
        self._queue: "asyncio.Queue[Optional[Job]]" = asyncio.Queue()
        self._worker_tasks: List[asyncio.Task] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._fault_armed_jobs: set = set()
        self.counters: Dict[str, int] = {
            "submitted": 0,
            "dedup_inflight": 0,
            "dedup_cached": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "retries": 0,
            "recovered": 0,
            "rejected": 0,
            "fleet_dispatched": 0,
        }

    # ------------------------------------------------------------------
    # on-disk layout (inside the store root)
    # ------------------------------------------------------------------
    @property
    def service_dir(self) -> str:
        return os.path.join(self.store.root, "service")

    @property
    def journal_path(self) -> str:
        return os.path.join(self.service_dir, "jobs.jsonl")

    def suite_dir(self, fingerprint: str) -> str:
        """Shared with the CLI's shard layout: ``<store>/suite/<fp>/``."""
        return os.path.join(self.store.root, "suite", fingerprint)

    def report_path(self, fingerprint: str) -> str:
        return os.path.join(self.suite_dir(fingerprint), "report.json")

    def checkpoint_path(self, fingerprint: str) -> str:
        return os.path.join(self.suite_dir(fingerprint), "service.checkpoint.jsonl")

    # ------------------------------------------------------------------
    # the accepted-job journal
    # ------------------------------------------------------------------
    def _journal_append(self, payload: Mapping[str, Any]) -> None:
        os.makedirs(self.service_dir, exist_ok=True)
        line = json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def _journal_accept(self, job: Job) -> None:
        self._journal_append(
            {
                "op": "accept",
                "job": job.id,
                "fingerprint": job.fingerprint,
                "options": dict(job.options),
                "suite": job.suite.to_dict(),
            }
        )

    def _journal_close(self, job: Job) -> None:
        self._journal_append({"op": "close", "job": job.id, "state": job.state})

    def _read_journal(self) -> List[Dict[str, Any]]:
        entries: List[Dict[str, Any]] = []
        try:
            handle = open(self.journal_path, "r", encoding="utf-8")
        except FileNotFoundError:
            return entries
        with handle:
            skipped = 0
            for line in handle:
                if not line.strip():
                    continue
                try:
                    entries.append(json.loads(line))
                except ValueError:
                    skipped += 1  # torn tail from a kill mid-append
            if skipped:
                warnings.warn(
                    f"job journal {self.journal_path}: skipped {skipped} unreadable "
                    "line(s) (expected after a kill mid-append)",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return entries

    def recover(self) -> List[Job]:
        """Re-enqueue every accepted-but-unfinished job from the journal.

        Called by :meth:`start` before the workers spin up.  Jobs whose
        report already landed (killed between report write and journal
        close) are closed without re-running; everything else is re-created
        in ``queued`` state with origin ``"recovered"``.  The journal is
        compacted to just the still-open accepts.
        """
        entries = self._read_journal()
        open_accepts: Dict[str, Dict[str, Any]] = {}
        for entry in entries:
            if entry.get("op") == "accept" and isinstance(entry.get("job"), str):
                open_accepts[entry["job"]] = entry
            elif entry.get("op") == "close":
                open_accepts.pop(entry.get("job"), None)
        recovered: List[Job] = []
        for entry in open_accepts.values():
            try:
                suite = SuiteSpec.from_dict(entry["suite"])
            except (KeyError, TypeError, ValueError) as exc:
                warnings.warn(
                    f"job journal: dropping unreadable accepted job "
                    f"{entry.get('job')!r}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            job = Job(
                id=entry["job"],
                suite=suite,
                fingerprint=suite.fingerprint(),
                options=dict(entry.get("options", {})),
                origin="recovered",
            )
            recovered.append(job)
        # Compact: rewrite the journal with only the still-open accepts, so
        # it never grows without bound across restarts.
        if entries:
            os.makedirs(self.service_dir, exist_ok=True)
            tmp = self.journal_path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                for entry in open_accepts.values():
                    handle.write(
                        json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
                    )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.journal_path)
        for job in recovered:
            if os.path.exists(self.report_path(job.fingerprint)):
                # Finished before the kill; only the journal close was lost.
                job.state = "done"
                job.finished_at = time.time()
                self.jobs[job.id] = job
                self._latest_by_fp[job.fingerprint] = job
                self._journal_close(job)
                continue
            if job.fingerprint in self._inflight:
                # Two journaled accepts of one fingerprint: the first is
                # already enqueued, so the extra accept is redundant --
                # close it like a live duplicate submission would dedup it.
                self._journal_append(
                    {"op": "close", "job": job.id, "state": "superseded"}
                )
                continue
            self.counters["recovered"] += 1
            self.jobs[job.id] = job
            self._latest_by_fp[job.fingerprint] = job
            self._inflight[job.fingerprint] = job
            self._queue.put_nowait(job)
        return [job for job in recovered if job.id in self.jobs and not job.terminal]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.recover()
        for _ in range(self.workers):
            self._worker_tasks.append(asyncio.create_task(self._worker()))

    async def shutdown(self) -> None:
        """Graceful stop: interrupt running jobs at the next task boundary.

        Running executions raise :class:`SuiteCancelled` via their
        ``should_stop`` hook; their checkpoints and journal accepts survive,
        so the next server run resumes them with at most the in-flight
        trials recomputed.
        """
        self.stopping = True
        for _ in self._worker_tasks:
            self._queue.put_nowait(None)
        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks.clear()

    # ------------------------------------------------------------------
    # submission / dedup
    # ------------------------------------------------------------------
    def submit(self, suite: SuiteSpec, options: Optional[Mapping[str, Any]] = None) -> Tuple[Job, str]:
        """Accept (or dedup) one suite; returns ``(job, disposition)``.

        Disposition is ``"new"`` (journaled and enqueued), ``"inflight"``
        (attached to an identical queued/running job), ``"cached"``
        (answered by the fingerprint's persisted report) or ``"rejected"``
        (queue-depth backpressure: the pending-task backlog would exceed
        ``max_pending_tasks``; the returned job is terminal in state
        ``"rejected"``, never journaled or enqueued -- the HTTP layer maps
        it to 429).  Dedup never rejects: attaching to in-flight work or a
        cached report adds no load.  Must be called on the event loop; the
        journal fsync happens before this returns, so an acknowledged
        submission is already durable.
        """
        if self.stopping:
            raise JobRejected("service is shutting down; resubmit to the next instance")
        self.counters["submitted"] += 1
        fingerprint = suite.fingerprint()
        inflight = self._inflight.get(fingerprint)
        if inflight is not None and not inflight.terminal:
            self.counters["dedup_inflight"] += 1
            return inflight, "inflight"
        if os.path.exists(self.report_path(fingerprint)):
            self.counters["dedup_cached"] += 1
            cached = self._latest_by_fp.get(fingerprint)
            if cached is not None and cached.state == "done":
                return cached, "cached"
            job = Job(
                id=self._next_id(),
                suite=suite,
                fingerprint=fingerprint,
                state="done",
                origin="cache",
                finished_at=time.time(),
            )
            self.jobs[job.id] = job
            self._latest_by_fp[fingerprint] = job
            return job, "cached"
        if self.max_pending_tasks is not None:
            pending = self._pending_tasks()
            incoming = len(_flatten_tasks(suite))
            if pending + incoming > self.max_pending_tasks:
                self.counters["rejected"] += 1
                job = Job(
                    id=self._next_id(),
                    suite=suite,
                    fingerprint=fingerprint,
                    options=dict(options or {}),
                    state="rejected",
                    finished_at=time.time(),
                    error=(
                        f"queue backpressure: {pending} task(s) already pending "
                        f"+ {incoming} submitted would exceed the "
                        f"max_pending_tasks bound of {self.max_pending_tasks}; "
                        "retry once the backlog drains"
                    ),
                )
                self.jobs[job.id] = job
                return job, "rejected"
        job = Job(
            id=self._next_id(),
            suite=suite,
            fingerprint=fingerprint,
            options=dict(options or {}),
        )
        self._journal_accept(job)
        self.jobs[job.id] = job
        self._inflight[fingerprint] = job
        self._latest_by_fp[fingerprint] = job
        self._queue.put_nowait(job)
        return job, "new"

    def _next_id(self) -> str:
        return f"job-{next(self._ids):06d}"

    def _pending_tasks(self) -> int:
        """Tasks not yet done across every queued/running job (the backlog)."""
        pending = 0
        for job in self.jobs.values():
            if job.terminal:
                continue
            total = int(job.progress.get("total", job.task_count))
            done = int(job.progress.get("done", 0))
            pending += max(total - done, 0)
        return pending

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def cancel(self, job: Job) -> bool:
        """Request cancellation; returns whether the job was still live.

        A queued job is finalized immediately; a running one stops at its
        next task boundary (its checkpoint survives, so a resubmission of
        the same fingerprint resumes rather than restarts).
        """
        if job.terminal:
            return False
        job.cancel_requested = True
        if job.state == "queued":
            self._finalize(job, "cancelled")
        return True

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def subscribe(self, job: Job) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        job.subscribers.append(queue)
        return queue

    def unsubscribe(self, job: Job, queue: asyncio.Queue) -> None:
        try:
            job.subscribers.remove(queue)
        except ValueError:
            pass

    def _publish(self, job: Job, event: Dict[str, Any]) -> None:
        """Record and fan one event out to every attached stream (loop only)."""
        event = {"job": job.id, **event}
        if event.get("event") in ("plan", "task"):
            # Merge, not replace: the "plan" keys (tasks/resumed/hits/misses)
            # stay visible in the descriptor while "task" events tick
            # done/total forward.
            job.progress.update(
                {
                    key: event[key]
                    for key in ("tasks", "resumed", "hits", "misses", "done", "total")
                    if key in event
                }
            )
        for queue in list(job.subscribers):
            queue.put_nowait(event)

    def _publish_threadsafe(self, job: Job, event: Dict[str, Any]) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._publish, job, event)
        except RuntimeError:  # loop torn down mid-call
            pass

    def _finalize(self, job: Job, state: str, error: Optional[str] = None) -> None:
        job.state = state
        job.error = error
        job.finished_at = time.time()
        if self._inflight.get(job.fingerprint) is job:
            self._inflight.pop(job.fingerprint, None)
        counter = {"done": "completed", "failed": "failed", "cancelled": "cancelled"}[state]
        self.counters[counter] += 1
        self._journal_close(job)
        self._publish(job, {"event": "state", "state": state, "error": error})

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        while True:
            job = await self._queue.get()
            if job is None or self.stopping:
                return
            if job.terminal:  # cancelled while queued
                continue
            await self._run_job(job)

    async def _run_job(self, job: Job) -> None:
        assert self._loop is not None
        job.state = "running"
        job.started_at = time.time()
        self._publish(job, {"event": "state", "state": "running"})
        attempt = 0
        while True:
            attempt += 1
            job.attempts = attempt
            stop_flag = {"stop": False}
            future = self._loop.run_in_executor(None, self._execute_sync, job, stop_flag)
            _done, pending = await asyncio.wait({future}, timeout=self.timeout_s)
            if pending:
                # Per-attempt timeout: stop the thread cooperatively at its
                # next task boundary (its finished records stay durable in
                # checkpoint + store), then retry from that checkpoint.
                stop_flag["stop"] = True
                try:
                    await future
                except BaseException:  # noqa: BLE001 - drained, outcome is "timeout"
                    pass
                if not self._retry_or_fail(
                    job, attempt, f"attempt timed out after {self.timeout_s}s"
                ):
                    return
                await asyncio.sleep(self.backoff_s * (2 ** (attempt - 1)))
                continue
            try:
                report_dict = future.result()
            except SuiteCancelled:
                if self.stopping and not job.cancel_requested:
                    # Graceful shutdown: the job stays accepted (no journal
                    # close), its checkpoint survives -> recovered next run.
                    job.state = "queued"
                    job.started_at = None
                    self._publish(job, {"event": "state", "state": "queued"})
                else:
                    self._finalize(job, "cancelled")
                return
            except Exception as exc:  # noqa: BLE001 - crashed attempt
                if not self._retry_or_fail(job, attempt, f"{type(exc).__name__}: {exc}"):
                    return
                await asyncio.sleep(self.backoff_s * (2 ** (attempt - 1)))
                continue
            self._write_report(job.fingerprint, report_dict)
            self._finalize(job, "done")
            return

    def _retry_or_fail(self, job: Job, attempt: int, error: str) -> bool:
        """Account one failed attempt; True when another attempt should run."""
        if job.cancel_requested or self.stopping:
            if self.stopping and not job.cancel_requested:
                job.state = "queued"
                job.started_at = None
            else:
                self._finalize(job, "cancelled")
            return False
        if attempt > self.retries:
            self._finalize(job, "failed", error=error)
            return False
        self.counters["retries"] += 1
        self._publish(job, {"event": "retry", "attempt": attempt, "error": error})
        return True

    def _fleet_size(self, job: Job) -> int:
        """How many fleet workers this job should use (0 = in-process pool).

        ``options.fleet`` forces (and sizes) fleet dispatch per job;
        otherwise any job big enough (``task_count >= fleet_threshold``)
        rides the manager's ``fleet_workers`` default when one is configured.
        """
        forced = int(job.options.get("fleet", 0) or 0)
        if forced >= 1:
            return forced
        if self.fleet_workers >= 2 and job.task_count >= self.fleet_threshold:
            return self.fleet_workers
        return 0

    def _execute_sync(self, job: Job, stop_flag: Dict[str, bool]) -> Dict[str, Any]:
        """One blocking execution attempt (runs in a worker thread)."""
        fault = self._arm_fault(job)
        executed = 0

        def on_progress(event: Dict[str, Any]) -> None:
            nonlocal executed
            if event.get("event") == "task":
                executed += 1
                if fault is not None and executed >= fault.after_tasks:
                    if fault.kind == "exit":
                        os._exit(70)  # simulated hard worker death
                    raise InjectedFault(
                        f"injected crash after {executed} executed task(s)"
                    )
            self._publish_threadsafe(job, event)

        def should_stop() -> bool:
            return stop_flag["stop"] or job.cancel_requested or self.stopping

        fleet = self._fleet_size(job)
        if fleet >= 1:
            # Multi-process dispatch: the store doubles as the checkpoint
            # (every worker writes records there before marking its lease),
            # so a crashed/retried attempt resumes exactly like the
            # checkpointed serial path.
            from repro.scenarios.fleet import run_suite_fleet

            self.counters["fleet_dispatched"] += 1
            self._fleet_active.add(job.id)
            try:
                report = run_suite_fleet(
                    job.suite,
                    workers=fleet,
                    store=self.store,
                    prebuild=bool(job.options.get("prebuild", self.default_prebuild)),
                    on_progress=on_progress,
                    should_stop=should_stop,
                )
            finally:
                self._fleet_active.discard(job.id)
            return report.to_dict()

        report = run_suite(
            job.suite,
            jobs=int(job.options.get("jobs", self.default_jobs)),
            prebuild=bool(job.options.get("prebuild", self.default_prebuild)),
            store=self.store,
            checkpoint=self.checkpoint_path(job.fingerprint),
            resume=True,
            on_progress=on_progress,
            should_stop=should_stop,
        )
        return report.to_dict()

    def _arm_fault(self, job: Job) -> Optional[FaultPlan]:
        """The fault plan for this attempt, if armed (first attempt only for
        ``crash``; once per process for ``exit``)."""
        plan = self.fault_plan
        if plan is None:
            return None
        if plan.kind == "crash":
            return plan if job.attempts <= 1 else None
        if job.id in self._fault_armed_jobs:
            return None
        self._fault_armed_jobs.add(job.id)
        return plan

    # ------------------------------------------------------------------
    # reports
    # ------------------------------------------------------------------
    def _write_report(self, fingerprint: str, report_dict: Mapping[str, Any]) -> str:
        """Persist the report atomically; its bytes are what every client gets."""
        path = self.report_path(fingerprint)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(report_dict, handle, sort_keys=True, separators=(",", ":"))
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path

    def report_bytes(self, job: Job) -> Optional[bytes]:
        """The persisted report of a done job, verbatim (``None`` until done)."""
        if job.state != "done":
            return None
        try:
            with open(self.report_path(job.fingerprint), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        states: Dict[str, int] = {state: 0 for state in JOB_STATES}
        backlog: Dict[str, Dict[str, Any]] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
            if job.terminal:
                continue
            # Per-job backlog: total comes from the live progress snapshot
            # once a "plan" event landed (resume may shrink it below the
            # suite's task count), the flattened suite before that.
            total = int(job.progress.get("total", job.task_count))
            done = int(job.progress.get("done", 0))
            backlog[job.id] = {
                "state": job.state,
                "tasks_total": total,
                "tasks_done": done,
                "tasks_pending": max(total - done, 0),
            }
        backlog_tasks = sum(b["tasks_pending"] for b in backlog.values())
        return {
            "uptime_s": time.time() - self.started_at,
            "workers": self.workers,
            "queue_depth": self._queue.qsize(),
            "inflight": len(self._inflight),
            "jobs": states,
            "backlog": backlog,
            "backlog_tasks": backlog_tasks,
            "counters": dict(self.counters),
            "fleet": {
                "workers": self.fleet_workers,
                "threshold": self.fleet_threshold,
                "active_jobs": len(self._fleet_active),
                "dispatched": self.counters["fleet_dispatched"],
                "max_pending_tasks": self.max_pending_tasks,
                "pending_tasks": backlog_tasks,
                "utilization": (
                    min(1.0, backlog_tasks / self.max_pending_tasks)
                    if self.max_pending_tasks
                    else None
                ),
                "rejected": self.counters["rejected"],
            },
            "store": self.store.stats(),
        }
