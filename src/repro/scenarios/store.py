"""The content-addressed trial result store.

A :class:`ResultStore` persists executed trial records -- the picklable
``trial_record`` wire format of :mod:`repro.scenarios.runtime` (metrics row,
counters, optional ``perf_stats``) -- under a content-derived key, so any
repeated trial anywhere (a rerun suite, an overlapping sweep, a second shard
of the same partition) becomes a near-free cache hit instead of a recompute.

Keying
------
A trial's key is the SHA-256 of three canonical-JSON components:

* the **trial identity** (:func:`scenario_trial_identity`): the scenario's
  canonical form *minus* everything the executed trial does not depend on --
  the spec's ``name``/``description``, the engine path/kernel flags (all
  lanes are byte-identical by the trace-identity contract), the declared
  metrics, and the run policy's ``trials``/``master_seed``/``seed_policy``
  (which only matter through the resolved seed);
* the **trial seed**, resolved through the single shared helper
  :func:`repro.analysis.sweep.derive_trial_seed` (via
  :meth:`repro.scenarios.spec.RunPolicy.trial_seed`);
* the **metrics signature** (:func:`metrics_signature`): the declared metric
  specs, the resolved trace mode, and the profile flag -- so changing a
  metric's definition or recording mode invalidates exactly the rows it
  affects, never more.

Dropping the spec name and trial bookkeeping from the key is what makes the
store *content*-addressed: two suite entries with different ids but identical
physics share one stored record, and a ``trials=8`` spec shares its first
three records with the ``trials=3`` prefix of the same experiment.

Layout
------
::

    root/
      store.json            # {"version": 1}
      objects/
        <2 hex chars>.jsonl # append-only JSONL bucket (first 2 key chars)

Each bucket line is one canonical-JSON object
``{"key", "spec", "sig", "record"}`` (``spec`` = the originating spec's full
fingerprint, kept as metadata for ``gc``).  Writers append whole lines with a
single buffered write + optional ``fsync`` under ``O_APPEND`` semantics, so
concurrent writers from separate processes interleave at line granularity and
never lose each other's rows; duplicate keys are resolved last-write-wins.
Corrupted or truncated lines (a writer killed mid-append) are skipped with a
:class:`RuntimeWarning` and counted in :meth:`ResultStore.stats`;
:meth:`ResultStore.gc` compacts them away.  Bucket access is additionally
serialized by POSIX advisory ``flock`` locks (shared for scans, exclusive for
appends and the ``gc`` rewrite), so :meth:`ResultStore.stats` and
:meth:`ResultStore.gc` are safe to run while other processes append -- a
concurrent writer queues behind the compaction and lands its row in the
rewritten bucket instead of losing it.

An in-process LRU front caches decoded buckets (validated against the file's
size+mtime, so a concurrent writer's appends are picked up) and makes warm
reruns mostly memory reads.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, TextIO, Tuple

try:  # POSIX advisory locks; absent on Windows (degrades to lock-free mode).
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.scenarios.metrics import required_trace_mode
from repro.scenarios.spec import ScenarioSpec, _json_canonical

#: Version of the on-disk layout *and* of the record schema folded into every
#: metrics signature -- bump it to invalidate all stored rows at once.
#: v2: trial records always carry a ``perf_stats`` section with the engine
#: lane report (``lane`` / ``lane_fallback``).
STORE_SCHEMA_VERSION = 2


# ----------------------------------------------------------------------
# bucket-file locking
# ----------------------------------------------------------------------
# Appends under O_APPEND were always line-atomic in practice, but
# ``stats()``/``gc()`` iterate whole bucket files and used to race concurrent
# writers: a torn in-progress line was miscounted, a bucket deleted between
# ``listdir`` and ``open`` crashed the scan, and a ``gc`` rewrite racing an
# appender could drop the appender's row on ``os.replace``.  Every bucket
# access now takes a POSIX advisory ``flock`` -- shared for readers, exclusive
# for appenders and the gc rewrite -- with the classic reopen-on-stale-inode
# dance so a writer that blocked on a bucket while ``gc`` replaced it lands in
# the *new* file instead of the unlinked one.  On platforms without ``fcntl``
# the helpers degrade to the old lock-free behavior.


def _flock(handle: TextIO, exclusive: bool) -> None:
    if fcntl is not None:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)


def _same_inode(handle: TextIO, path: str) -> bool:
    try:
        return os.fstat(handle.fileno()).st_ino == os.stat(path).st_ino
    except FileNotFoundError:
        return False


def _open_locked_append(path: str) -> TextIO:
    """Open ``path`` for appending, holding an exclusive lock on the *live* file.

    Loops until the locked handle's inode matches the path: if ``gc``
    replaced the bucket while this writer was blocked on the lock, the stale
    (unlinked) handle is discarded and the new file is locked instead, so no
    append can land in a file nothing will ever read again.
    """
    while True:
        handle = open(path, "a", encoding="utf-8")
        if fcntl is None:
            return handle
        _flock(handle, exclusive=True)
        if _same_inode(handle, path):
            return handle
        handle.close()


@contextmanager
def _locked_bucket_reader(path: str) -> Iterator[Optional[TextIO]]:
    """A shared-locked read handle on a bucket, or ``None`` if it vanished.

    Taking the shared lock means no flock-honoring appender is mid-write, so
    the reader never sees a torn trailing line from a *live* writer (a line
    torn by a kill remains visible, by design).  Reopens on a stale inode
    exactly like :func:`_open_locked_append`.
    """
    while True:
        try:
            handle = open(path, "r", encoding="utf-8", errors="replace")
        except FileNotFoundError:
            yield None
            return
        if fcntl is None:
            break
        _flock(handle, exclusive=False)
        if _same_inode(handle, path):
            break
        handle.close()
    try:
        yield handle
    finally:
        handle.close()


def metrics_signature(spec: ScenarioSpec) -> str:
    """The metrics-identity component of a trial's store key.

    Covers the declared metric specs (names + args, canonical JSON), the
    trace mode the trial records under (``"auto"`` resolved against the
    metric registry), the engine ``profile`` flag (it adds ``perf_stats`` to
    the record), and :data:`STORE_SCHEMA_VERSION`.  Changing any of these --
    adding a metric, changing its args, switching trace modes -- changes the
    signature and therefore misses the old cache entries; everything else
    (engine lanes, kernel backend) deliberately does not.
    """
    if spec.engine.is_auto_trace_mode:
        trace_mode = required_trace_mode(spec.metrics).value
    else:
        trace_mode = spec.engine.trace_mode
    payload = {
        "schema": STORE_SCHEMA_VERSION,
        "metrics": [metric.to_dict() for metric in spec.metrics],
        "trace_mode": trace_mode,
        "profile": spec.engine.profile,
    }
    digest = hashlib.sha256(_json_canonical(payload).encode()).hexdigest()
    return digest[:16]


def scenario_trial_identity(spec: ScenarioSpec) -> str:
    """Canonical JSON of everything one executed trial's outputs depend on.

    The scenario's canonical dict minus the fields a trial's trace provably
    does not depend on: ``name``/``description`` (labels), ``metrics``
    (covered by :func:`metrics_signature`), the engine block (all engine
    lanes/kernels are trace-identical; the trace mode and profile flag ride
    in the metrics signature), and the run policy's trial bookkeeping
    (``trials`` / ``master_seed`` / ``seed_policy`` matter only through the
    resolved per-trial seed, which is keyed separately).  The round budget
    (``rounds`` + ``rounds_unit``) stays: it decides how long the trial ran.
    """
    data = spec.to_dict()
    data.pop("name", None)
    data.pop("description", None)
    data.pop("metrics", None)
    data.pop("engine", None)
    data.pop("version", None)
    run = data.pop("run")
    data["rounds"] = run["rounds"]
    data["rounds_unit"] = run["rounds_unit"]
    return _json_canonical(data)


def trial_key(spec: ScenarioSpec, trial_index: int) -> str:
    """The store key of one trial: identity + seed + metrics signature."""
    payload = {
        "identity": scenario_trial_identity(spec),
        "trial_seed": spec.run.trial_seed(trial_index),
        "metrics_signature": metrics_signature(spec),
    }
    return hashlib.sha256(_json_canonical(payload).encode()).hexdigest()[:32]


class ResultStore:
    """An append-only, fsync-safe on-disk trial cache with an LRU front.

    Parameters
    ----------
    root:
        Directory of the store (created on first use).
    fsync:
        Flush-and-fsync every appended record (default).  ``False`` trades
        kill-durability of the last few records for write throughput.
    lru_buckets:
        Maximum decoded bucket indexes held in memory (LRU-evicted).
    """

    def __init__(self, root: str, fsync: bool = True, lru_buckets: int = 64) -> None:
        self.root = str(root)
        self.fsync = bool(fsync)
        self.lru_buckets = max(1, int(lru_buckets))
        self.hits = 0
        self.misses = 0
        self._corrupt_lines = 0
        #: bucket name -> ((size, mtime_ns), {key: record_line_dict})
        self._buckets: "OrderedDict[str, Tuple[Tuple[int, int], Dict[str, Dict[str, Any]]]]" = (
            OrderedDict()
        )
        self._initialized = False

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def coerce(cls, store: Any) -> Optional["ResultStore"]:
        """``None`` | path string | ``ResultStore`` -> ``ResultStore`` or ``None``.

        Every ``store=`` parameter in the execution stack accepts all three.
        """
        if store is None or isinstance(store, cls):
            return store
        if isinstance(store, (str, os.PathLike)):
            return cls(os.fspath(store))
        raise TypeError(f"store must be a ResultStore, a path, or None; got {store!r}")

    _process_stores: Dict[str, "ResultStore"] = {}

    @classmethod
    def shared(cls, root: str) -> "ResultStore":
        """One process-wide instance per root (what pool workers use)."""
        root = os.path.abspath(os.fspath(root))
        store = cls._process_stores.get(root)
        if store is None:
            store = cls._process_stores[root] = cls(root)
        return store

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------
    @property
    def objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    def _ensure_layout(self) -> None:
        if self._initialized:
            return
        os.makedirs(self.objects_dir, exist_ok=True)
        meta_path = os.path.join(self.root, "store.json")
        if not os.path.exists(meta_path):
            with open(meta_path, "w", encoding="utf-8") as handle:
                json.dump({"version": STORE_SCHEMA_VERSION}, handle)
                handle.write("\n")
        self._initialized = True

    @staticmethod
    def _bucket_name(key: str) -> str:
        return key[:2]

    def _bucket_path(self, bucket: str) -> str:
        return os.path.join(self.objects_dir, f"{bucket}.jsonl")

    # ------------------------------------------------------------------
    # bucket loading (the LRU front)
    # ------------------------------------------------------------------
    def _parse_bucket(self, path: str) -> Dict[str, Dict[str, Any]]:
        index: Dict[str, Dict[str, Any]] = {}
        corrupt = 0
        with _locked_bucket_reader(path) as handle:
            if handle is None:
                return index
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    key = entry["key"]
                    record = entry["record"]
                except (ValueError, TypeError, KeyError):
                    corrupt += 1
                    continue
                if not isinstance(key, str) or not isinstance(record, dict):
                    corrupt += 1
                    continue
                index[key] = entry  # last write wins on duplicate keys
        if corrupt:
            self._corrupt_lines += corrupt
            warnings.warn(
                f"ResultStore: skipped {corrupt} corrupted/truncated line(s) in "
                f"{path} (run `python -m repro store gc` to compact them away)",
                RuntimeWarning,
                stacklevel=3,
            )
        return index

    def _load_bucket(self, bucket: str) -> Dict[str, Dict[str, Any]]:
        path = self._bucket_path(bucket)
        try:
            stat = os.stat(path)
        except FileNotFoundError:
            self._buckets.pop(bucket, None)
            return {}
        signature = (stat.st_size, stat.st_mtime_ns)
        cached = self._buckets.get(bucket)
        if cached is not None and cached[0] == signature:
            self._buckets.move_to_end(bucket)
            return cached[1]
        index = self._parse_bucket(path)
        self._buckets[bucket] = (signature, index)
        self._buckets.move_to_end(bucket)
        while len(self._buckets) > self.lru_buckets:
            self._buckets.popitem(last=False)
        return index

    # ------------------------------------------------------------------
    # the spec-level API
    # ------------------------------------------------------------------
    def get(self, spec: ScenarioSpec, trial_index: int) -> Optional[Dict[str, Any]]:
        """The stored trial record, or ``None`` on a miss.

        On a hit the record's ``trial_index`` is rewritten to the requested
        one: the key identifies content (identity + seed + metrics), and the
        same physical trial may sit at different indexes in different run
        policies (e.g. trial 0 of a pinned-seed spec vs trial 3 of the
        derived-seed spec that produced that seed).
        """
        entry = self.get_entry(trial_key(spec, trial_index))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        record = dict(entry["record"])
        record["trial_index"] = trial_index
        return record

    def put(self, spec: ScenarioSpec, trial_index: int, record: Mapping[str, Any]) -> str:
        """Persist one executed trial record; returns its key."""
        key = trial_key(spec, trial_index)
        self.put_entry(key, record, spec_fingerprint=spec.fingerprint(),
                       signature=metrics_signature(spec))
        return key

    # ------------------------------------------------------------------
    # the key-level API
    # ------------------------------------------------------------------
    def get_entry(self, key: str) -> Optional[Dict[str, Any]]:
        index = self._load_bucket(self._bucket_name(key))
        return index.get(key)

    def put_entry(
        self,
        key: str,
        record: Mapping[str, Any],
        spec_fingerprint: str = "",
        signature: str = "",
    ) -> None:
        self._ensure_layout()
        entry = {
            "key": key,
            "spec": spec_fingerprint,
            "sig": signature,
            "record": dict(record),
        }
        line = _json_canonical(entry) + "\n"
        bucket = self._bucket_name(key)
        path = self._bucket_path(bucket)
        # One buffered write of the whole line under O_APPEND semantics plus
        # an exclusive bucket lock: concurrent writers interleave at line
        # granularity, and locked readers (stats/gc) never observe the line
        # half-written.
        handle = _open_locked_append(path)
        try:
            handle.write(line)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        finally:
            handle.close()
        cached = self._buckets.get(bucket)
        if cached is not None:
            cached[1][key] = entry
            try:
                stat = os.stat(path)
                self._buckets[bucket] = ((stat.st_size, stat.st_mtime_ns), cached[1])
            except FileNotFoundError:  # pragma: no cover - racing an rm -rf
                self._buckets.pop(bucket, None)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _bucket_files(self) -> List[str]:
        try:
            names = sorted(os.listdir(self.objects_dir))
        except FileNotFoundError:
            return []
        return [
            os.path.join(self.objects_dir, name)
            for name in names
            if name.endswith(".jsonl")
        ]

    def stats(self) -> Dict[str, Any]:
        """Store-wide counts: files/lines/entries/bytes on disk, plus this
        process's hit/miss/corrupt counters.

        Safe to call while other processes append or ``gc`` runs: each bucket
        is scanned under a shared lock (so no live writer is mid-line), a
        bucket deleted between the directory listing and the scan is skipped,
        and unparseable lines are counted in ``corrupt_lines`` instead of
        silently inflating ``lines``.
        """
        scanned = 0
        lines = 0
        entries = 0
        corrupt = 0
        size_bytes = 0
        for path in self._bucket_files():
            index: Dict[str, Any] = {}
            with _locked_bucket_reader(path) as handle:
                if handle is None:
                    continue  # deleted (e.g. by an rm/gc) since the listing
                scanned += 1
                size_bytes += os.fstat(handle.fileno()).st_size
                for line in handle:
                    if not line.strip():
                        continue
                    lines += 1
                    try:
                        entry = json.loads(line)
                        index[entry["key"]] = True
                    except (ValueError, TypeError, KeyError):
                        corrupt += 1
                        continue
            entries += len(index)
        return {
            "root": self.root,
            "files": scanned,
            "lines": lines,
            "entries": entries,
            "corrupt_lines": corrupt,
            "bytes": size_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "corrupt_lines_seen": self._corrupt_lines,
        }

    def gc(
        self,
        drop_fingerprints: Tuple[str, ...] = (),
        dry_run: bool = False,
    ) -> Dict[str, int]:
        """Compact every bucket: drop corrupt lines, superseded duplicate
        keys, and (optionally) all records whose originating spec fingerprint
        is in ``drop_fingerprints``.

        Rewrites each bucket atomically (tmp file + ``os.replace``) while
        holding the bucket's exclusive lock, so concurrent writers queue
        behind the rewrite instead of losing in-flight rows: an appender that
        blocked on the old file detects the replaced inode when it acquires
        the lock and reopens the new one (see :func:`_open_locked_append`).
        """
        dropped_corrupt = 0
        dropped_superseded = 0
        dropped_evicted = 0
        kept = 0
        drop = set(drop_fingerprints)
        for path in self._bucket_files():
            raw_lines = 0
            index: "OrderedDict[str, str]" = OrderedDict()
            try:
                handle = open(path, "r", encoding="utf-8", errors="replace")
            except FileNotFoundError:
                continue  # deleted since the directory listing
            with handle:
                # Exclusive (not shared) lock: it is held across the rewrite
                # below, guaranteeing no appender lands between our last read
                # and the os.replace that would orphan its line.
                _flock(handle, exclusive=True)
                if not _same_inode(handle, path):
                    continue  # another gc replaced it; nothing lost, skip
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    raw_lines += 1
                    try:
                        entry = json.loads(line)
                        key = entry["key"]
                        entry["record"]
                    except (ValueError, TypeError, KeyError):
                        dropped_corrupt += 1
                        continue
                    if not isinstance(key, str):
                        dropped_corrupt += 1
                        continue
                    if entry.get("spec") in drop:
                        index.pop(key, None)
                        dropped_evicted += 1
                        continue
                    if key in index:
                        dropped_superseded += 1
                        index.pop(key)  # keep last-write-wins ordering
                    index[key] = _json_canonical(entry)
                kept += len(index)
                if dry_run or raw_lines == len(index):
                    continue
                tmp_path = path + ".tmp"
                with open(tmp_path, "w", encoding="utf-8") as tmp_handle:
                    for line in index.values():
                        tmp_handle.write(line + "\n")
                    tmp_handle.flush()
                    os.fsync(tmp_handle.fileno())
                os.replace(tmp_path, path)
                self._buckets.pop(os.path.basename(path)[:-len(".jsonl")], None)
        return {
            "kept": kept,
            "dropped_corrupt": dropped_corrupt,
            "dropped_superseded": dropped_superseded,
            "dropped_evicted": dropped_evicted,
        }
