"""The declarative metrics pipeline: registered trace reducers + aggregation.

A **metric** is a named, JSON-configurable reducer from one executed trial
(trace, graph, derived params, ...) to a flat row of numbers.  Scenarios name
metrics declaratively (:class:`~repro.scenarios.spec.MetricSpec` entries on
:class:`~repro.scenarios.spec.ScenarioSpec`); the runtime evaluates them per
trial and aggregates the rows with the :mod:`repro.analysis.stats` helpers --
the same decorator-registry pattern as topologies/schedulers/algorithms/
environments, extended with two pieces of metadata:

* **minimum trace mode** -- each metric declares the cheapest
  :class:`~repro.simulation.trace.TraceMode` it can run under, so a scenario
  with ``engine.trace_mode="auto"`` records exactly as much trace as its
  metrics need (see :func:`required_trace_mode`);
* **pooled aggregates** -- a metric may declare *ratio* columns
  (``sum(numerator)/sum(denominator)`` pooled across trials -- the exact
  arithmetic the pre-pipeline benchmark scripts used for e.g. mean ack
  delay) and *rate* columns (pooled proportions with Wilson 95% intervals
  from :func:`repro.analysis.stats.wilson_interval`).

The built-in metrics wrap the existing reducers the repo already had -- the
:mod:`repro.simulation.metrics` helpers (ack delays, delivery, progress,
receive rate, seed owners) and the specification checkers
(:func:`repro.core.lb_spec.check_lb_execution`,
:func:`repro.core.seed_spec.check_seed_execution`,
:func:`repro.mac.spec.check_mac_guarantees`) -- so spec-checker verdicts are
first-class declarative metrics rather than ad-hoc post-processing.

Metric rows are **deterministic**: reducers see no wall-clock timing, so a
trial's metric row is byte-identical whether the trial ran serially, on a
``run(jobs=...)`` pool, or inside a suite worker (pinned by
``tests/test_metrics_pipeline.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.stats import quantile, summarize, wilson_interval
from repro.core.lb_spec import check_lb_execution
from repro.core.seed_spec import check_seed_execution, decide_latency_rounds
from repro.dualgraph.geometric import central_vertex
from repro.mac.spec import MacLayerGuarantees, check_mac_guarantees
from repro.scenarios.components import resolve_senders
from repro.scenarios.registry import Registry
from repro.scenarios.spec import MetricSpec
from repro.simulation.metrics import (
    ack_delays,
    data_reception_round_sets,
    data_reception_rounds,
    delivery_report,
    progress_report,
    receive_rates,
    unique_seed_owner_counts,
)
from repro.simulation.trace import ExecutionTrace, TraceMode

#: Namespace separator between a metric's registry name and its column keys:
#: metric ``"ack_delay"`` contributes row columns like ``"ack_delay.delay_max"``.
METRIC_KEY_SEPARATOR = "."


@dataclass
class MetricContext:
    """Everything a metric reducer may read about one executed trial.

    Reducers receive the context positionally plus their
    :class:`~repro.scenarios.spec.MetricSpec` args as keywords.  They must be
    pure functions of this data -- no wall clock, no randomness -- which is
    what keeps metric rows identical across serial and parallel execution.
    """

    trace: ExecutionTrace
    graph: Any
    params: Any = None
    spec: Any = None
    trial_index: int = 0
    seed: int = 0
    rounds: int = 0
    environment: Any = None
    algorithm_build: Any = None
    #: The topology builder's :class:`~repro.dualgraph.geometric.Embedding`
    #: (geometry-aware metrics such as ``probe_progress`` need it; ``None``
    #: for topologies without one).
    embedding: Any = None


class MetricRegistry(Registry):
    """A :class:`~repro.scenarios.registry.Registry` of metric reducers.

    On top of the base name -> builder mapping it records, per metric, the
    minimum :class:`TraceMode` the reducer needs and the declarative pooled
    aggregate columns (``ratios`` / ``rates``) described in the module
    docstring.
    """

    def __init__(self) -> None:
        super().__init__("metric")
        self._trace_modes: Dict[str, TraceMode] = {}
        self._ratios: Dict[str, Dict[str, Tuple[str, str]]] = {}
        self._rates: Dict[str, Dict[str, Tuple[str, str]]] = {}

    def register(  # type: ignore[override]
        self,
        name: str,
        sample_args: Optional[Mapping[str, Any]] = None,
        trace_mode: TraceMode = TraceMode.FULL,
        ratios: Optional[Mapping[str, Tuple[str, str]]] = None,
        rates: Optional[Mapping[str, Tuple[str, str]]] = None,
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator: register ``reducer(ctx, **args) -> Mapping[str, number]``.

        Parameters
        ----------
        trace_mode:
            The *minimum* trace mode the reducer needs.  Evaluating the metric
            on a trace recorded under a poorer mode raises; scenarios with
            ``engine.trace_mode="auto"`` record the cheapest mode covering all
            their metrics.
        ratios:
            ``{column: (numerator_key, denominator_key)}`` -- aggregated as
            the pooled ratio ``sum(num)/sum(den)`` across trials (``None``
            when the pooled denominator is 0).
        rates:
            ``{column: (successes_key, trials_key)}`` -- aggregated as the
            pooled proportion ``sum(successes)/max(sum(trials), 1)`` plus its
            Wilson 95% interval.
        """
        decorator = super().register(name, sample_args=sample_args)

        def wrap(reducer: Callable[..., Any]) -> Callable[..., Any]:
            reducer = decorator(reducer)
            self._trace_modes[name] = trace_mode
            self._ratios[name] = dict(ratios or {})
            self._rates[name] = dict(rates or {})
            return reducer

        return wrap

    def min_trace_mode(self, name: str) -> TraceMode:
        """The cheapest :class:`TraceMode` the named metric can run under."""
        self.get(name)  # raise uniformly on unknown names
        return self._trace_modes[name]

    def ratios(self, name: str) -> Dict[str, Tuple[str, str]]:
        self.get(name)
        return dict(self._ratios[name])

    def rates(self, name: str) -> Dict[str, Tuple[str, str]]:
        self.get(name)
        return dict(self._rates[name])


#: The process-wide metric registry backing ``ScenarioSpec.metrics``.
METRICS = MetricRegistry()


def register_metric(
    name: str,
    sample_args: Optional[Mapping[str, Any]] = None,
    trace_mode: TraceMode = TraceMode.FULL,
    ratios: Optional[Mapping[str, Tuple[str, str]]] = None,
    rates: Optional[Mapping[str, Tuple[str, str]]] = None,
):
    """Register a metric reducer: ``f(ctx, **args) -> Mapping[str, number]``."""
    return METRICS.register(
        name, sample_args=sample_args, trace_mode=trace_mode, ratios=ratios, rates=rates
    )


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------
def required_trace_mode(metrics: Sequence[MetricSpec]) -> TraceMode:
    """The cheapest :class:`TraceMode` covering every declared metric.

    With no metrics declared the answer is ``FULL`` -- the safe historical
    default, since a metric-free scenario's consumer typically reads the kept
    traces directly.
    """
    if not metrics:
        return TraceMode.FULL
    needed = TraceMode.COUNTERS
    for metric in metrics:
        minimum = METRICS.min_trace_mode(metric.name)
        if minimum.richness > needed.richness:
            needed = minimum
    return needed


def evaluate_metrics(
    metrics: Sequence[MetricSpec], ctx: MetricContext
) -> Dict[str, Any]:
    """One trial's metric row: every declared metric, namespaced.

    Each metric's columns appear as ``"<metric name>.<key>"``.  A metric
    whose minimum trace mode exceeds the trace's actual mode raises a
    :class:`ValueError` naming both -- the fix is ``engine.trace_mode="auto"``
    (or an explicit richer mode).
    """
    row: Dict[str, Any] = {}
    for metric in metrics:
        reducer = METRICS.get(metric.name)
        minimum = METRICS.min_trace_mode(metric.name)
        if not ctx.trace.mode.covers(minimum):
            raise ValueError(
                f"metric {metric.name!r} needs trace_mode >= {minimum.value!r} but the "
                f"trace was recorded under {ctx.trace.mode.value!r}; set "
                "engine.trace_mode='auto' (or a richer explicit mode)"
            )
        values = reducer(ctx, **metric.args)
        for key, value in values.items():
            row[f"{metric.name}{METRIC_KEY_SEPARATOR}{key}"] = value
    return row


def is_metric_column(key: str) -> bool:
    """True for namespaced metric-row keys (``"<metric>.<column>"``)."""
    return METRIC_KEY_SEPARATOR in key


def aggregate_metric_rows(
    metrics: Sequence[MetricSpec], rows: Sequence[Mapping[str, Any]]
) -> Dict[str, Dict[str, float]]:
    """Aggregate per-trial metric rows into per-column statistics.

    Every numeric column gets ``sum`` plus the
    :func:`repro.analysis.stats.summarize` statistics (``count`` / ``mean`` /
    ``std`` / ``min`` / ``median`` / ``p90`` / ``max``).  Columns a metric
    declared as *ratios* or *rates* are then (re)computed by pooling their
    numerator / denominator sums across trials -- the arithmetic that makes a
    three-trials-pooled mean ack delay exactly equal the flat mean over all
    delays, and a pooled failure rate carry an honest Wilson interval.  A
    pooled ratio or rate whose denominator is 0 reports ``None`` values (no
    observations is not a perfect score).
    """
    aggregates: Dict[str, Dict[str, float]] = {}
    columns: Dict[str, List[float]] = {}
    for row in rows:
        for key, value in row.items():
            if isinstance(value, bool) or isinstance(value, (int, float)):
                columns.setdefault(key, []).append(float(value))
    for key, values in columns.items():
        aggregates[key] = {**summarize(values), "sum": sum(values)}

    def pooled_sum(metric_name: str, key: str) -> float:
        column = f"{metric_name}{METRIC_KEY_SEPARATOR}{key}"
        entry = aggregates.get(column)
        return entry["sum"] if entry else 0.0

    for metric in metrics:
        for out_key, (num_key, den_key) in METRICS.ratios(metric.name).items():
            numerator = pooled_sum(metric.name, num_key)
            denominator = pooled_sum(metric.name, den_key)
            column = f"{metric.name}{METRIC_KEY_SEPARATOR}{out_key}"
            aggregates[column] = {
                "value": numerator / denominator if denominator else None,
                "numerator": numerator,
                "denominator": denominator,
            }
        for out_key, (hits_key, trials_key) in METRICS.rates(metric.name).items():
            hits = int(pooled_sum(metric.name, hits_key))
            trials = int(pooled_sum(metric.name, trials_key))
            low, high = wilson_interval(hits, trials) if trials else (None, None)
            column = f"{metric.name}{METRIC_KEY_SEPARATOR}{out_key}"
            aggregates[column] = {
                "value": hits / trials if trials else None,
                "successes": float(hits),
                "trials": float(trials),
                "wilson_low": low,
                "wilson_high": high,
            }
    return aggregates


def flatten_aggregates(aggregates: Mapping[str, Mapping[str, float]]) -> Dict[str, Any]:
    """One representative number per aggregated column (for flat result rows).

    Ratio/rate columns contribute their pooled ``value``; plain columns
    contribute their ``mean``.
    """
    flat: Dict[str, Any] = {}
    for key, entry in aggregates.items():
        flat[key] = entry["value"] if "value" in entry else entry["mean"]
    return flat


# ----------------------------------------------------------------------
# built-in metrics
# ----------------------------------------------------------------------
def _require_params(ctx: MetricContext, metric: str, what: str) -> Any:
    if ctx.params is None:
        raise ValueError(
            f"metric {metric!r} needs {what} but the trial has no derived params; "
            "pass the value explicitly in the metric's args"
        )
    return ctx.params


@register_metric("counters", sample_args={}, trace_mode=TraceMode.COUNTERS)
def _metric_counters(ctx: MetricContext) -> Dict[str, Any]:
    """Aggregate event/frame counters (available under every trace mode)."""
    counts = ctx.trace.event_counts
    return {
        "rounds": ctx.rounds,
        "transmissions": ctx.trace.num_transmissions,
        "receptions": ctx.trace.num_receptions,
        "bcasts": counts["bcast"],
        "acks": counts["ack"],
        "recvs": counts["recv"],
        "decides": counts["decide"],
    }


@register_metric("params", sample_args={}, trace_mode=TraceMode.COUNTERS)
def _metric_params(ctx: MetricContext) -> Dict[str, Any]:
    """The derived algorithm parameters as columns (Δ, t_ack, t_prog, ...).

    Records whichever of the well-known parameter attributes the trial's
    params object exposes -- LBAlg and SeedAlg trials share one metric.
    """
    row: Dict[str, Any] = {}
    for attr in (
        "delta",
        "delta_prime",
        "epsilon",
        "phase_length",
        "tprog_rounds",
        "tack_rounds",
        "total_rounds",
        "delta_bound",
    ):
        value = getattr(ctx.params, attr, None)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            row[attr] = value
    return row


@register_metric("graph_stats", sample_args={}, trace_mode=TraceMode.COUNTERS)
def _metric_graph_stats(ctx: MetricContext) -> Dict[str, Any]:
    """The sampled network's measured local quantities (n, Δ, Δ').

    What the benchmark harnesses report as "measured" degrees next to the
    budgets the parameters were derived from: ``delta``/``delta_prime`` are
    the graph's :meth:`~repro.dualgraph.graph.DualGraph.degree_bounds` --
    the maximum reliable and potential degrees of the trial's sample.
    """
    delta, delta_prime = ctx.graph.degree_bounds()
    return {"n": ctx.graph.n, "delta": delta, "delta_prime": delta_prime}


@register_metric(
    "ack_delay",
    sample_args={},
    trace_mode=TraceMode.EVENTS,
    ratios={"delay_mean": ("delay_sum", "acked")},
    rates={"pending_rate": ("pending", "broadcasts")},
)
def _metric_ack_delay(ctx: MetricContext, bound: Optional[int] = None) -> Dict[str, Any]:
    """Acknowledgment latency (wraps :func:`repro.simulation.metrics.ack_delays`).

    ``bound`` defaults to the trial's derived ``t_ack`` when available;
    ``bound_violations`` counts delays exceeding it (the Timely
    Acknowledgment condition as a number).
    """
    if bound is None:
        bound = getattr(ctx.params, "tack_rounds", None)
    records = ack_delays(ctx.trace)
    delays = [r.delay for r in records if r.delay is not None]
    row: Dict[str, Any] = {
        "broadcasts": len(records),
        "acked": len(delays),
        "pending": len(records) - len(delays),
        "delay_sum": sum(delays),
        "delay_max": max(delays) if delays else 0,
    }
    if bound is not None:
        row["bound"] = bound
        row["bound_violations"] = sum(1 for d in delays if d > bound)
    return row


@register_metric(
    "delivery",
    sample_args={},
    trace_mode=TraceMode.EVENTS,
    ratios={"fraction_mean": ("fraction_sum", "broadcasts")},
    rates={"success_rate": ("full_deliveries", "broadcasts")},
)
def _metric_delivery(ctx: MetricContext) -> Dict[str, Any]:
    """Reliable-neighborhood delivery (wraps
    :func:`repro.simulation.metrics.delivery_report`)."""
    records = delivery_report(ctx.trace, ctx.graph)
    completed = [r for r in records if r.ack_round is not None]
    return {
        "broadcasts": len(records),
        "completed": len(completed),
        "full_deliveries": sum(1 for r in records if r.fully_delivered),
        "fraction_sum": sum(r.delivery_fraction for r in records),
    }


@register_metric(
    "progress",
    sample_args={},
    trace_mode=TraceMode.FULL,
    rates={"failure_rate": ("failures", "windows")},
)
def _metric_progress(
    ctx: MetricContext, window: Optional[int] = None, use_frames: bool = True
) -> Dict[str, Any]:
    """Progress-window outcomes (wraps
    :func:`repro.simulation.metrics.progress_report`).

    ``window`` defaults to the trial's derived ``t_prog``.
    """
    if window is None:
        window = getattr(
            _require_params(ctx, "progress", "a window length (t_prog)"),
            "tprog_rounds",
            None,
        )
        if window is None:
            raise ValueError(
                "metric 'progress' needs an explicit window: the trial's params "
                "do not define tprog_rounds"
            )
    report = progress_report(ctx.trace, ctx.graph, window=window, use_frames=use_frames)
    return {
        "window": window,
        "total_windows": len(report.windows),
        "windows": report.num_applicable,
        "failures": len(report.failures),
    }


def _resolve_probe(ctx: MetricContext, metric: str, vertex: Optional[Any]) -> Any:
    """The probe vertex of a geometry-aware metric.

    An explicit ``vertex`` arg wins; otherwise the vertex embedded nearest
    the center of the deployment area
    (:func:`repro.dualgraph.geometric.central_vertex`), which needs the
    trial's embedding.
    """
    if vertex is not None:
        return vertex
    if ctx.embedding is None:
        raise ValueError(
            f"metric {metric!r} needs the trial's embedding to place the center "
            "probe; pass an explicit vertex= arg for topologies without one"
        )
    return central_vertex(ctx.graph, ctx.embedding)


@register_metric(
    "probe_progress",
    sample_args={},
    trace_mode=TraceMode.FULL,
    rates={"pooled_failure_rate": ("failures", "windows")},
)
def _metric_probe_progress(
    ctx: MetricContext, window: Optional[int] = None, vertex: Optional[Any] = None
) -> Dict[str, Any]:
    """Progress-window outcomes at a single probe receiver (the E9 measurement).

    Like ``progress``, but restricted to one receiver -- by default the vertex
    embedded nearest the center of the deployment area.  ``failure_rate`` is
    the per-trial rate (0.0 when no window was applicable), so a mean over
    trials with ``windows > 0`` reproduces the pre-migration harness's
    arithmetic exactly; the pooled ``pooled_failure_rate`` rate is the
    cross-trial aggregate with a Wilson interval.
    """
    probe = _resolve_probe(ctx, "probe_progress", vertex)
    if window is None:
        window = getattr(
            _require_params(ctx, "probe_progress", "a window length (t_prog)"),
            "tprog_rounds",
            None,
        )
        if window is None:
            raise ValueError(
                "metric 'probe_progress' needs an explicit window: the trial's "
                "params do not define tprog_rounds"
            )
    report = progress_report(ctx.trace, ctx.graph, window=window, receivers=[probe])
    return {
        "probe": probe,
        "window": window,
        "total_windows": len(report.windows),
        "windows": report.num_applicable,
        "failures": len(report.failures),
        "failure_rate": report.failure_rate,
    }


@register_metric(
    "probe_reception",
    sample_args={},
    trace_mode=TraceMode.FULL,
    ratios={"pooled_rate": ("receptions", "rounds")},
)
def _metric_probe_reception(
    ctx: MetricContext, vertex: Optional[Any] = None
) -> Dict[str, Any]:
    """Per-round data-reception rate at a single probe receiver (E9).

    Counts the rounds in which the probe -- by default the center vertex --
    physically received a data frame
    (:func:`repro.simulation.metrics.data_reception_rounds`) and divides by
    the trial's round budget.
    """
    probe = _resolve_probe(ctx, "probe_reception", vertex)
    receptions = len(data_reception_rounds(ctx.trace, probe))
    return {
        "probe": probe,
        "rounds": ctx.rounds,
        "receptions": receptions,
        "rate": receptions / ctx.rounds if ctx.rounds else 0.0,
    }


@register_metric(
    "receive_rate",
    sample_args={},
    trace_mode=TraceMode.FULL,
    ratios={"rate_mean": ("rate_sum", "vertices")},
)
def _metric_receive_rate(
    ctx: MetricContext, start_round: int = 1, end_round: Optional[int] = None
) -> Dict[str, Any]:
    """Per-vertex frame receive rates over a round range (wraps
    :func:`repro.simulation.metrics.receive_rates`)."""
    if end_round is None:
        end_round = ctx.rounds
    if end_round < start_round:  # zero-round runs have no window to rate
        counts: Dict[Any, int] = {}
    else:
        counts = receive_rates(ctx.trace, start_round, end_round)
    total = max(end_round - start_round + 1, 1)
    rates = [counts.get(vertex, 0) / total for vertex in ctx.graph.vertices]
    return {
        "vertices": len(rates),
        "rate_sum": sum(rates),
        "rate_min": min(rates) if rates else 0.0,
        "rate_max": max(rates) if rates else 0.0,
    }


@register_metric(
    "body_receive",
    sample_args={},
    trace_mode=TraceMode.FULL,
    ratios={"rate_mean": ("rate_sum", "receivers")},
)
def _metric_body_receive(
    ctx: MetricContext, senders: Optional[Any] = None
) -> Dict[str, Any]:
    """Per-receiver data-reception rates over the *body* rounds of each phase.

    The Lemma 4.2 measurement: for every receiver with at least one sender
    among its reliable neighbors, the fraction of body rounds (the rounds
    after the ``Ts``-long seed-agreement preamble of each LBAlg phase) in
    which the receiver physically received a data frame.  ``senders``
    defaults to the scenario environment's sender selection, so the metric
    rates exactly the vertices sitting next to an actively broadcasting
    neighbor.  The pooled ``rate_mean`` ratio equals the flat mean over all
    per-receiver rates across trials.
    """
    params = _require_params(ctx, "body_receive", "the phase structure (ts, phase_length)")
    if senders is None:
        env_spec = getattr(ctx.spec, "environment", None)
        senders = env_spec.args.get("senders") if env_spec is not None else None
        if senders is None:
            raise ValueError(
                "metric 'body_receive' needs a sender selection: pass senders= in "
                "the metric args or declare one on the scenario's environment"
            )
    sender_set = set(resolve_senders(ctx.graph, senders))
    phases = ctx.rounds // params.phase_length
    body_rounds = set()
    for phase in range(phases):
        base = phase * params.phase_length
        for offset in range(params.ts + 1, params.phase_length + 1):
            body_rounds.add(base + offset)

    receivers = set()
    for sender in sender_set:
        receivers |= set(ctx.graph.reliable_neighbors(sender))
    receivers -= sender_set

    heard_by = data_reception_round_sets(ctx.trace)
    total = len(body_rounds)
    rates = [
        len(heard_by.get(receiver, frozenset()) & body_rounds) / total
        for receiver in receivers
    ] if total else []
    return {
        "body_rounds": total,
        "receivers": len(rates),
        "rate_sum": sum(rates),
        "rate_min": min(rates) if rates else 0.0,
        "rate_max": max(rates) if rates else 0.0,
    }


@register_metric(
    "reception_provenance",
    sample_args={},
    trace_mode=TraceMode.FULL,
    ratios={
        "per_round": ("data_receptions", "rounds"),
        "unreliable_fraction": ("unreliable_receptions", "data_receptions"),
    },
)
def _metric_reception_provenance(ctx: MetricContext) -> Dict[str, Any]:
    """Which edges data receptions traveled over (reliable vs unreliable).

    Counts the physical data-frame receptions in the trace and, among them,
    the ones not attributable to any reliable neighbor of the receiver --
    i.e. deliveries that must have crossed a scheduled unreliable edge.  The
    model-boundary experiment (E12) uses this to show the adaptive adversary
    never lets a delivery cross an unreliable edge.
    """
    trace, graph = ctx.trace, ctx.graph
    data_receptions = 0
    unreliable_receptions = 0
    for round_number in range(1, ctx.rounds + 1):
        transmissions = trace.transmissions_in_round(round_number)
        for receiver, frame in trace.receptions_in_round(round_number).items():
            if getattr(frame, "message", None) is None:
                continue
            data_receptions += 1
            frame_senders = [v for v, f in transmissions.items() if f is frame]
            if frame_senders and not any(
                v in graph.reliable_neighbors(receiver) for v in frame_senders
            ):
                unreliable_receptions += 1
    return {
        "rounds": ctx.rounds,
        "data_receptions": data_receptions,
        "unreliable_receptions": unreliable_receptions,
    }


@register_metric(
    "seed_owners",
    sample_args={},
    trace_mode=TraceMode.EVENTS,
    ratios={"owners_mean": ("owner_count_sum", "vertices")},
)
def _metric_seed_owners(
    ctx: MetricContext, delta_bound: Optional[int] = None
) -> Dict[str, Any]:
    """Unique seed-owner counts per closed neighborhood (wraps
    :func:`repro.simulation.metrics.unique_seed_owner_counts`)."""
    counts = unique_seed_owner_counts(ctx.trace, ctx.graph)
    if delta_bound is None:
        delta_bound = getattr(ctx.params, "delta_bound", None)
    row: Dict[str, Any] = {
        "vertices": len(counts),
        "owner_count_sum": sum(counts.values()),
        "owners_max": max(counts.values()) if counts else 0,
    }
    if delta_bound:
        row["delta_bound"] = delta_bound
        row["agreement_violations"] = sum(1 for c in counts.values() if c > delta_bound)
    return row


@register_metric(
    "commit_latency",
    sample_args={},
    trace_mode=TraceMode.EVENTS,
    ratios={"latency_mean": ("latency_sum", "decided")},
)
def _metric_commit_latency(ctx: MetricContext) -> Dict[str, Any]:
    """Commit (decide) latencies in rounds (wraps
    :func:`repro.core.seed_spec.decide_latency_rounds`).

    The pooled ``latency_mean`` ratio equals the flat mean over every
    vertex's earliest decide round across all trials -- the E2 runtime
    measurement.
    """
    latencies = decide_latency_rounds(ctx.trace)
    return {
        "decided": len(latencies),
        "latency_sum": sum(latencies.values()),
        "latency_max": max(latencies.values()) if latencies else 0,
    }


@register_metric(
    "lb_spec",
    sample_args={},
    trace_mode=TraceMode.FULL,
    rates={
        "reliability_rate": ("reliability_failures", "completed_broadcasts"),
        "progress_rate": ("progress_failures", "progress_windows"),
    },
)
def _metric_lb_spec(
    ctx: MetricContext,
    tack: Optional[int] = None,
    tprog: Optional[int] = None,
    check_progress: bool = True,
) -> Dict[str, Any]:
    """``LB(t_ack, t_prog, ε)`` verdicts as numbers (wraps
    :func:`repro.core.lb_spec.check_lb_execution`)."""
    if tack is None:
        tack = _require_params(ctx, "lb_spec", "t_ack").tack_rounds
    if tprog is None:
        tprog = _require_params(ctx, "lb_spec", "t_prog").tprog_rounds
    report = check_lb_execution(
        ctx.trace, ctx.graph, tack, tprog, check_progress=check_progress
    )
    return {
        "deterministic_ok": int(report.deterministic_ok),
        "timely_ack_violations": len(report.timely_ack_violations),
        "validity_violations": len(report.validity_violations),
        "completed_broadcasts": len(report.completed_deliveries),
        "reliability_failures": len(report.reliability_failures),
        "progress_windows": report.num_progress_windows,
        "progress_failures": (
            len(report.progress.failures) if report.progress is not None else 0
        ),
    }


@register_metric(
    "seed_spec",
    sample_args={},
    trace_mode=TraceMode.EVENTS,
    rates={"agreement_rate": ("agreement_violations", "vertices")},
)
def _metric_seed_spec(
    ctx: MetricContext, delta_bound: Optional[int] = None
) -> Dict[str, Any]:
    """``Seed(δ, ε)`` verdicts as numbers (wraps
    :func:`repro.core.seed_spec.check_seed_execution`)."""
    if delta_bound is None:
        delta_bound = getattr(
            _require_params(ctx, "seed_spec", "the δ agreement bound"),
            "delta_bound",
            None,
        )
        if not delta_bound:
            raise ValueError(
                "metric 'seed_spec' needs delta_bound: the trial's params do not "
                "define a positive one"
            )
    report = check_seed_execution(ctx.trace, ctx.graph, delta_bound)
    return {
        "ok": int(report.ok),
        "delta_bound": delta_bound,
        "vertices": len(report.agreement_counts),
        "well_formedness_violations": len(report.well_formedness_violations),
        "consistency_violations": len(report.consistency_violations),
        "agreement_violations": len(report.agreement_violations),
        "owners_max": report.max_agreement_count,
    }


@register_metric(
    "mac_guarantees",
    sample_args={},
    trace_mode=TraceMode.FULL,
    rates={
        "reliability_rate": ("reliability_failures", "acked_broadcasts"),
        "progress_rate": ("progress_failures", "progress_windows"),
    },
)
def _metric_mac_guarantees(
    ctx: MetricContext,
    f_ack: Optional[int] = None,
    f_prog: Optional[int] = None,
    epsilon: Optional[float] = None,
    check_progress: bool = True,
) -> Dict[str, Any]:
    """Abstract MAC layer guarantee verdicts (wraps
    :func:`repro.mac.spec.check_mac_guarantees`).

    The promise defaults to the one the LBAlg-backed layer advertises for the
    trial's derived params (:meth:`repro.mac.spec.MacLayerGuarantees.from_lb_params`).
    """
    if f_ack is None and f_prog is None and epsilon is None:
        params = _require_params(ctx, "mac_guarantees", "an f_ack/f_prog/epsilon promise")
        guarantees = MacLayerGuarantees.from_lb_params(params)
    else:
        if f_ack is None or f_prog is None or epsilon is None:
            raise ValueError(
                "metric 'mac_guarantees' needs all of f_ack, f_prog and epsilon "
                "when any of them is given explicitly"
            )
        guarantees = MacLayerGuarantees(f_ack=f_ack, f_prog=f_prog, epsilon=epsilon)
    report = check_mac_guarantees(
        ctx.trace, ctx.graph, guarantees, check_progress=check_progress
    )
    row = dict(report.summary())
    row["ack_ok"] = int(report.ack_ok)
    row["within_epsilon"] = int(report.within_epsilon)
    return row


def _q(values: Sequence[float], q: float) -> float:
    """A quantile that reports 0.0 on no observations (empty queues are real)."""
    return quantile(values, q) if values else 0.0


@register_metric(
    "queue",
    sample_args={},
    trace_mode=TraceMode.COUNTERS,
    ratios={
        "delivery_latency_mean": ("delivery_latency_sum", "delivered"),
        "ack_latency_mean": ("ack_latency_sum", "acked"),
        "wait_mean": ("wait_sum", "submitted"),
        "throughput": ("acked", "rounds"),
        "backlog_mean": ("backlog_sum", "rounds"),
    },
    rates={
        "delivery_rate": ("delivered", "enqueued"),
        "delivered_by_ack_rate": ("delivered_before_ack", "acked"),
        "drop_rate": ("dropped", "offered"),
    },
)
def _metric_queue(ctx: MetricContext) -> Dict[str, Any]:
    """Backlog, waiting-time and delivery-latency statistics of a queued trial.

    Reads the trial's :class:`repro.traffic.environment.QueuedEnvironment`
    state (the environment records per-message enqueue/dequeue/delivery/ack
    rounds itself), so any trace mode suffices.  *Delivery* means every
    reliable neighbor of the origin produced a ``recv`` -- the abstract MAC
    layer's delivery event; latencies count rounds from enqueue.  Percentile
    columns are per-trial; the pooled ratio/rate columns (means, throughput,
    delivery/drop rates with Wilson intervals) are exact across trials.
    """
    from repro.traffic.environment import QueuedEnvironment

    environment = ctx.environment
    if not isinstance(environment, QueuedEnvironment):
        raise ValueError(
            "metric 'queue' needs the 'queued' environment (a QueuedEnvironment); "
            f"this trial ran {type(environment).__name__}"
        )
    return {
        "rounds": ctx.rounds,
        "offered": environment.offered,
        "enqueued": environment.enqueued,
        "dropped": environment.dropped,
        "submitted": len(environment.wait_samples),
        "acked": environment.acked,
        "delivered": environment.delivered,
        "delivered_before_ack": environment.delivered_before_ack,
        "backlog_sum": sum(environment.backlog_samples),
        "backlog_p50": _q(environment.backlog_samples, 0.5),
        "backlog_p90": _q(environment.backlog_samples, 0.9),
        "backlog_max": max(environment.backlog_samples, default=0),
        "wait_sum": sum(environment.wait_samples),
        "wait_p50": _q(environment.wait_samples, 0.5),
        "wait_max": max(environment.wait_samples, default=0),
        "delivery_latency_sum": sum(environment.delivery_latencies),
        "delivery_latency_p50": _q(environment.delivery_latencies, 0.5),
        "delivery_latency_p90": _q(environment.delivery_latencies, 0.9),
        "delivery_latency_max": max(environment.delivery_latencies, default=0),
        "ack_latency_sum": sum(environment.ack_latencies),
        "ack_latency_p50": _q(environment.ack_latencies, 0.5),
        "ack_latency_max": max(environment.ack_latencies, default=0),
    }


@register_metric("flood", sample_args={}, trace_mode=TraceMode.COUNTERS)
def _metric_flood(ctx: MetricContext) -> Dict[str, Any]:
    """Coverage and completion of a flood trial (the E8 measurement).

    Reads the live :class:`~repro.mac.applications.flood.FloodClient` states
    the ``flood`` algorithm builder parked in
    ``algorithm_build.extras["flood_clients"]``: each client records the
    round it first received the token, which never changes afterwards, so
    the row is independent of how far past completion the trial ran (and of
    the trace mode -- counters suffice).  ``completion_round`` falls back to
    the executed round budget when coverage is incomplete, matching the
    pre-suite harness's convention.
    """
    build = ctx.algorithm_build
    clients = getattr(build, "extras", {}).get("flood_clients") if build else None
    if not clients:
        raise ValueError(
            "metric 'flood' needs the 'flood' algorithm (no flood_clients in "
            "the trial's algorithm build extras)"
        )
    receive_rounds = [client.received_round for client in clients.values()]
    covered = sum(1 for rnd in receive_rounds if rnd is not None)
    complete = covered == len(clients)
    return {
        "vertices": len(clients),
        "covered": covered,
        "coverage": covered / len(clients),
        "complete": int(complete),
        "completion_round": (
            max(receive_rounds) if complete else ctx.rounds
        ),
    }


@register_metric(
    "receiver_contention",
    sample_args={"receiver": 0},
    # FULL: first_reception_round counts *physical* data-frame receptions
    # (recorded frames), not recv outputs.
    trace_mode=TraceMode.FULL,
)
def _metric_receiver_contention(
    ctx: MetricContext,
    receiver: Any = 0,
    origins: Optional[Sequence[Any]] = None,
) -> Dict[str, Any]:
    """Contended-receiver latencies against the lower-bound floors (E7).

    At a receiver adjacent to Δ simultaneous broadcasters:
    ``first_reception_round`` is the progress-like quantity (first successful
    data reception; the executed round budget when nothing landed), and
    ``all_heard_round`` is the acknowledgment-like quantity -- the round by
    which the receiver has heard every expected origin, which can never beat
    Δ.  ``origins`` defaults to every vertex other than the receiver; when
    some origin was never heard, ``complete`` is 0 and ``all_heard_round``
    is the sentinel -1 (NaN would poison byte-identity comparisons).
    """
    expected = (
        list(origins)
        if origins is not None
        else [vertex for vertex in ctx.graph.vertices if vertex != receiver]
    )
    heard: Dict[Any, int] = {}
    for recv in ctx.trace.recv_outputs:
        if recv.vertex != receiver:
            continue
        origin = recv.message.origin
        if origin not in heard:
            heard[origin] = recv.round_number
    first_rounds = data_reception_rounds(ctx.trace, receiver)
    complete = set(heard) >= set(expected)
    return {
        "expected_origins": len(expected),
        "distinct_origins_heard": len(set(heard) & set(expected)),
        "first_reception_round": first_rounds[0] if first_rounds else ctx.rounds,
        "complete": int(complete),
        "all_heard_round": (
            max(heard[origin] for origin in expected) if complete else -1
        ),
    }
