"""The serializable scenario specification tree.

A :class:`ScenarioSpec` is a complete, declarative description of one
experiment: which network family to sample (:class:`TopologySpec`), which
link scheduler plays the adversary (:class:`SchedulerSpec`), which algorithm
runs at every vertex (:class:`AlgorithmSpec`), which environment feeds it
(:class:`EnvironmentSpec`), which engine paths to use (:class:`EngineConfig`),
and how long / how often / under which seeds to run it (:class:`RunPolicy`).

Every spec round-trips losslessly through :meth:`ScenarioSpec.to_dict` /
:meth:`ScenarioSpec.from_dict` and JSON, and :meth:`ScenarioSpec.fingerprint`
is a content hash of that canonical form -- stable across processes and
platforms (it never touches Python object hashing), which is what lets
prebuilt scheduler-delta tables and on-disk caches be keyed by spec identity
(see :func:`repro.dualgraph.adversary.prebuild_scheduler_deltas`).

Component names refer to the registries in
:mod:`repro.scenarios.registry`; materialization lives in
:mod:`repro.scenarios.runtime`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.analysis.sweep import TRIAL_SEED_POLICIES, derive_trial_seed
from repro.simulation.trace import TraceMode

#: Spec schema version, embedded in serialized form so future layouts can
#: migrate old files explicitly instead of guessing.
SPEC_VERSION = 1

_ROUNDS_UNITS = ("rounds", "phases", "tack", "algorithm")
_SEED_POLICIES = TRIAL_SEED_POLICIES
#: "auto" defers the choice to the metric registry: the runtime picks the
#: cheapest :class:`TraceMode` covering every declared metric's minimum (see
#: :func:`repro.scenarios.metrics.required_trace_mode`).
AUTO_TRACE_MODE = "auto"
_TRACE_MODES = tuple(mode.value for mode in TraceMode) + (AUTO_TRACE_MODE,)
_KERNELS = ("auto", "python", "numpy", "off")


def _json_canonical(data: Any) -> str:
    """Canonical JSON text: sorted keys, no whitespace, ASCII only."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"), ensure_ascii=True)


def _check_json_value(value: Any, where: str) -> Any:
    """Validate (and normalize) a value as JSON-representable."""
    try:
        return json.loads(json.dumps(value))
    except (TypeError, ValueError) as exc:
        raise TypeError(
            f"{where} must be JSON-serializable (got {type(value).__name__}): {exc}"
        ) from None


def _reject_unknown_keys(data: Mapping[str, Any], allowed, where: str) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        raise ValueError(
            f"unknown key(s) in {where}: {sorted(unknown)}; allowed: {sorted(allowed)}"
        )


@dataclass(frozen=True)
class _ComponentSpec:
    """A registry name plus its JSON argument mapping (base for the four kinds)."""

    #: Overridden by subclasses; names the registry the spec resolves against.
    kind = "component"

    name: str
    args: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"{self.kind} spec needs a non-empty name string")
        args = _check_json_value(dict(self.args), f"{self.kind} args")
        object.__setattr__(self, "args", args)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "args": dict(self.args)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "_ComponentSpec":
        _reject_unknown_keys(data, ("name", "args"), f"{cls.kind} spec")
        return cls(name=data["name"], args=dict(data.get("args", {})))

    def with_args(self, **updates: Any) -> "_ComponentSpec":
        merged = dict(self.args)
        merged.update(updates)
        return replace(self, args=merged)


class TopologySpec(_ComponentSpec):
    """Names a registered network generator (``repro.scenarios.registry.TOPOLOGIES``)."""

    kind = "topology"


class SchedulerSpec(_ComponentSpec):
    """Names a registered link scheduler (``repro.scenarios.registry.SCHEDULERS``)."""

    kind = "scheduler"


class AlgorithmSpec(_ComponentSpec):
    """Names a registered per-vertex algorithm (``repro.scenarios.registry.ALGORITHMS``)."""

    kind = "algorithm"


class EnvironmentSpec(_ComponentSpec):
    """Names a registered environment (``repro.scenarios.registry.ENVIRONMENTS``)."""

    kind = "environment"


class MetricSpec(_ComponentSpec):
    """Names a registered metric reducer (``repro.scenarios.metrics.METRICS``).

    A scenario carries any number of these in :attr:`ScenarioSpec.metrics`;
    each one is evaluated per trial against the trial's trace/graph/params and
    contributes namespaced columns (``"<name>.<key>"``) to the trial's metric
    row, then :mod:`repro.analysis.stats`-backed aggregates to the
    :class:`~repro.scenarios.runtime.RunResult`.
    """

    kind = "metric"


class ArrivalSpec(_ComponentSpec):
    """Names an arrival-process kind (``repro.traffic.arrivals.ARRIVAL_KINDS``)."""

    kind = "arrival"


@dataclass(frozen=True)
class TrafficSpec:
    """Declarative workload for the traffic subsystem (``repro.traffic``).

    Attributes
    ----------
    arrival:
        The arrival process generating per-node traffic.
    capacity:
        Per-node FIFO bound for the ``queued`` environment; ``0`` means
        unbounded (overflow beyond the bound is counted as drops).
    sources:
        Which vertices own queues -- any form
        :func:`repro.scenarios.components.resolve_senders` accepts; ``None``
        (default) means every vertex.
    sinks:
        Designated collection points: convergecast arrivals exclude them
        from generation, and traffic-aware schedulers root their routing
        tree at them.
    seed:
        Arrival-stream seed; ``None`` (default) inherits the trial seed, so
        multi-trial runs draw independent arrival realizations.
    """

    arrival: ArrivalSpec
    capacity: int = 0
    sources: Any = None
    sinks: Tuple[Any, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.arrival, ArrivalSpec):
            raise TypeError("traffic arrival must be an ArrivalSpec")
        if self.capacity < 0:
            raise ValueError("traffic capacity must be non-negative (0 = unbounded)")
        if self.sources is not None:
            object.__setattr__(
                self, "sources", _check_json_value(self.sources, "traffic sources")
            )
        object.__setattr__(
            self,
            "sinks",
            tuple(_check_json_value(list(self.sinks), "traffic sinks")),
        )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "arrival": self.arrival.to_dict(),
            "capacity": self.capacity,
        }
        if self.sources is not None:
            data["sources"] = self.sources
        if self.sinks:
            data["sinks"] = list(self.sinks)
        if self.seed is not None:
            data["seed"] = self.seed
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrafficSpec":
        _reject_unknown_keys(
            data, ("arrival", "capacity", "sources", "sinks", "seed"), "traffic spec"
        )
        if "arrival" not in data:
            raise ValueError("traffic spec needs an 'arrival' node")
        return cls(
            arrival=ArrivalSpec.from_dict(data["arrival"]),
            capacity=int(data.get("capacity", 0)),
            sources=data.get("sources"),
            sinks=tuple(data.get("sinks", ())),
            seed=data.get("seed"),
        )


@dataclass(frozen=True)
class EngineConfig:
    """Engine-path selection, declaratively (mirrors the ``Simulator`` kwargs).

    ``trace_mode`` is the :class:`~repro.simulation.trace.TraceMode` value as
    its string form (``"full"`` / ``"events"`` / ``"counters"``) so the spec
    stays plain JSON -- or :data:`AUTO_TRACE_MODE` (``"auto"``), in which case
    the runtime selects the cheapest mode that covers every metric the
    scenario declares (``"full"`` when it declares none, the safe historical
    default).

    ``kernel`` selects the engine's array-kernel backend (``"auto"`` /
    ``"python"`` / ``"numpy"`` / ``"off"``; see ``Simulator``).  The default
    ``"auto"`` is omitted from the serialized form so the fingerprints of
    every pre-existing spec are unchanged -- and since all lanes produce
    byte-identical traces, the backend choice deliberately does *not*
    participate in spec identity for cache keying.
    """

    fast_path: bool = True
    vector_path: bool = True
    batch_path: bool = True
    trace_mode: str = "full"
    kernel: str = "auto"
    profile: bool = False

    def __post_init__(self) -> None:
        if self.trace_mode not in _TRACE_MODES:
            raise ValueError(
                f"trace_mode must be one of {_TRACE_MODES}, got {self.trace_mode!r}"
            )
        if self.kernel not in _KERNELS:
            raise ValueError(
                f"kernel must be one of {_KERNELS}, got {self.kernel!r}"
            )

    @property
    def is_auto_trace_mode(self) -> bool:
        return self.trace_mode == AUTO_TRACE_MODE

    @property
    def trace_mode_enum(self) -> TraceMode:
        """The explicit :class:`TraceMode` (``"auto"`` has none until resolved)."""
        if self.is_auto_trace_mode:
            raise ValueError(
                "trace_mode='auto' is resolved against the scenario's metrics; "
                "use repro.scenarios.runtime.resolve_trace_mode(spec)"
            )
        return TraceMode(self.trace_mode)

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "fast_path": self.fast_path,
            "vector_path": self.vector_path,
            "batch_path": self.batch_path,
            "trace_mode": self.trace_mode,
            "profile": self.profile,
        }
        if self.kernel != "auto":
            # Omitted at the default for fingerprint stability (mirrors how
            # ScenarioSpec omits an empty metrics list).
            data["kernel"] = self.kernel
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EngineConfig":
        allowed = [f.name for f in fields(cls)]
        _reject_unknown_keys(data, allowed, "engine config")
        return cls(**{key: data[key] for key in allowed if key in data})


@dataclass(frozen=True)
class RunPolicy:
    """How long, how many times, and under which seeds a scenario runs.

    Attributes
    ----------
    rounds:
        The round budget, interpreted through ``rounds_unit``.
    rounds_unit:
        ``"rounds"`` -- ``rounds`` is the literal round count.
        ``"phases"`` -- ``rounds`` counts algorithm phases (requires the
        algorithm to report a phase length, e.g. LBAlg / SeedAlg).
        ``"tack"`` -- ``rounds`` counts acknowledgment periods
        (``t_ack = (Tack+1)(Ts+Tprog)`` for LBAlg).
        ``"algorithm"`` -- ``rounds`` multiplies the algorithm's natural
        running time (e.g. SeedAlg's ``total_rounds``).
    trials:
        Number of independent trials (fresh topology sample / scheduler /
        processes per trial unless their specs pin explicit seeds).
    master_seed:
        Root of the scenario's determinism; combined with ``seed_policy`` to
        produce each trial's seed.
    seed_policy:
        ``"fixed"`` -- every trial uses ``master_seed`` verbatim.
        ``"sequential"`` -- trial ``i`` uses ``master_seed + i``.
        ``"derived"`` (default) -- trial ``i`` uses the SHA-derived
        :func:`~repro.analysis.sweep.derive_point_seed`, so nearby master
        seeds never share trial seeds.
    """

    rounds: int = 1
    rounds_unit: str = "algorithm"
    trials: int = 1
    master_seed: int = 0
    seed_policy: str = "derived"

    def __post_init__(self) -> None:
        if self.rounds < 0:
            raise ValueError("rounds must be non-negative")
        if self.rounds_unit not in _ROUNDS_UNITS:
            raise ValueError(
                f"rounds_unit must be one of {_ROUNDS_UNITS}, got {self.rounds_unit!r}"
            )
        if self.trials < 1:
            raise ValueError("trials must be at least 1")
        if self.seed_policy not in _SEED_POLICIES:
            raise ValueError(
                f"seed_policy must be one of {_SEED_POLICIES}, got {self.seed_policy!r}"
            )

    def trial_seed(self, trial_index: int) -> int:
        """The deterministic seed for one trial (see ``seed_policy``).

        Delegates to :func:`repro.analysis.sweep.derive_trial_seed` -- the
        single helper every execution path (serial runs, worker pools, suite
        shards, the result store's keys) resolves trial seeds through.
        """
        if not 0 <= trial_index < self.trials:
            raise ValueError(f"trial_index must be in [0, {self.trials}), got {trial_index}")
        return derive_trial_seed(self.master_seed, trial_index, self.seed_policy)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rounds": self.rounds,
            "rounds_unit": self.rounds_unit,
            "trials": self.trials,
            "master_seed": self.master_seed,
            "seed_policy": self.seed_policy,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunPolicy":
        allowed = [f.name for f in fields(cls)]
        _reject_unknown_keys(data, allowed, "run policy")
        return cls(**{key: data[key] for key in allowed if key in data})


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, serializable description of one experiment.

    The spec is pure data: materializing it into live objects (graph,
    processes, scheduler, environment, :class:`~repro.simulation.engine.Simulator`)
    is :func:`repro.scenarios.runtime.materialize` /
    :func:`repro.scenarios.runtime.build`; executing it is
    :func:`repro.scenarios.runtime.run` and
    :func:`repro.scenarios.runtime.run_many`.
    """

    name: str
    topology: TopologySpec
    algorithm: AlgorithmSpec
    scheduler: SchedulerSpec = field(default_factory=lambda: SchedulerSpec("none"))
    environment: EnvironmentSpec = field(default_factory=lambda: EnvironmentSpec("null"))
    engine: EngineConfig = field(default_factory=EngineConfig)
    run: RunPolicy = field(default_factory=RunPolicy)
    metrics: Tuple[MetricSpec, ...] = ()
    traffic: Optional[TrafficSpec] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("scenario needs a non-empty name string")
        if self.traffic is not None and not isinstance(self.traffic, TrafficSpec):
            raise TypeError("traffic must be a TrafficSpec (or None)")
        for attr, klass in (
            ("topology", TopologySpec),
            ("algorithm", AlgorithmSpec),
            ("scheduler", SchedulerSpec),
            ("environment", EnvironmentSpec),
            ("engine", EngineConfig),
            ("run", RunPolicy),
        ):
            if not isinstance(getattr(self, attr), klass):
                raise TypeError(f"{attr} must be a {klass.__name__}")
        object.__setattr__(self, "metrics", tuple(self.metrics))
        for metric in self.metrics:
            if not isinstance(metric, MetricSpec):
                raise TypeError("metrics entries must be MetricSpec instances")
        names = [metric.name for metric in self.metrics]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate metric names in scenario: {sorted(names)}")

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON dict that :meth:`from_dict` restores losslessly.

        The ``metrics`` key is emitted only when the scenario declares
        metrics, so metric-free specs keep the serialized form (and hence the
        :meth:`fingerprint` that keys on-disk delta caches) they had before
        the metrics pipeline existed.  The ``traffic`` key is omitted the
        same way when no workload is declared, so every pre-traffic spec
        serializes byte-identically (result-store warm hits preserved).
        """
        data = {
            "version": SPEC_VERSION,
            "name": self.name,
            "description": self.description,
            "topology": self.topology.to_dict(),
            "algorithm": self.algorithm.to_dict(),
            "scheduler": self.scheduler.to_dict(),
            "environment": self.environment.to_dict(),
            "engine": self.engine.to_dict(),
            "run": self.run.to_dict(),
        }
        if self.metrics:
            data["metrics"] = [metric.to_dict() for metric in self.metrics]
        if self.traffic is not None:
            data["traffic"] = self.traffic.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        allowed = (
            "version",
            "name",
            "description",
            "topology",
            "algorithm",
            "scheduler",
            "environment",
            "engine",
            "run",
            "metrics",
            "traffic",
        )
        _reject_unknown_keys(data, allowed, "scenario spec")
        version = data.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValueError(
                f"unsupported scenario spec version {version!r} (expected {SPEC_VERSION})"
            )
        if "topology" not in data or "algorithm" not in data:
            raise ValueError("scenario spec needs at least 'topology' and 'algorithm'")
        kwargs: Dict[str, Any] = {
            "name": data.get("name", "scenario"),
            "description": data.get("description", ""),
            "topology": TopologySpec.from_dict(data["topology"]),
            "algorithm": AlgorithmSpec.from_dict(data["algorithm"]),
        }
        if "scheduler" in data:
            kwargs["scheduler"] = SchedulerSpec.from_dict(data["scheduler"])
        if "environment" in data:
            kwargs["environment"] = EnvironmentSpec.from_dict(data["environment"])
        if "engine" in data:
            kwargs["engine"] = EngineConfig.from_dict(data["engine"])
        if "run" in data:
            kwargs["run"] = RunPolicy.from_dict(data["run"])
        if "metrics" in data:
            kwargs["metrics"] = tuple(
                MetricSpec.from_dict(entry) for entry in data["metrics"]
            )
        if "traffic" in data:
            kwargs["traffic"] = TrafficSpec.from_dict(data["traffic"])
        return cls(**kwargs)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "ScenarioSpec":
        """Read a scenario JSON file (the ``python -m repro run`` input)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def save(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
        return path

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """A stable content hash of the canonical serialized spec.

        SHA-256 over the canonical JSON form, truncated to 16 hex digits.
        Identical specs produce identical fingerprints in every process and
        on every platform, which is the identity that keys prebuilt
        scheduler-delta tables and their on-disk cache files (see
        :func:`repro.dualgraph.adversary.prebuild_scheduler_deltas` and
        :func:`repro.scenarios.runtime.prebuild_delta_table`).
        """
        payload = _json_canonical(self.to_dict()).encode()
        return hashlib.sha256(payload).hexdigest()[:16]

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def with_overrides(self, overrides: Mapping[str, Any]) -> "ScenarioSpec":
        """A copy with dotted-path overrides applied.

        Keys address the serialized form: ``"scheduler.args.probability"``,
        ``"run.trials"``, ``"engine.trace_mode"``, ``"topology.name"`` ...
        Intermediate mappings are created for ``*.args.*`` paths; overriding a
        non-mapping midpoint is an error.  The result is re-validated through
        :meth:`from_dict`, so an override can never produce an unserializable
        spec.
        """
        data = self.to_dict()
        for path, value in overrides.items():
            parts = path.split(".")
            cursor: Any = data
            for i, part in enumerate(parts[:-1]):
                nxt = cursor.get(part) if isinstance(cursor, dict) else None
                if nxt is None and part == "args" and isinstance(cursor, dict):
                    nxt = cursor[part] = {}
                if not isinstance(nxt, dict):
                    raise KeyError(
                        f"override path {path!r} does not resolve at {'.'.join(parts[: i + 1])!r}"
                    )
                cursor = nxt
            cursor[parts[-1]] = _check_json_value(value, f"override {path!r}")
        return type(self).from_dict(data)

    def with_metrics(self, *metrics: MetricSpec) -> "ScenarioSpec":
        """A copy declaring exactly these metrics (dotted paths cannot address
        list entries, so metric lists are replaced wholesale)."""
        return replace(self, metrics=tuple(metrics))

    def variants(self, grid: Mapping[str, Any]) -> Tuple["ScenarioSpec", ...]:
        """One spec per point of a dotted-path override grid (canonical order)."""
        from repro.analysis.sweep import iter_grid_points

        return tuple(self.with_overrides(point) for point in iter_grid_points(grid))
