"""``python -m repro serve``: the always-available scenario service over HTTP.

A deliberately minimal HTTP/1.1 layer (stdlib ``asyncio`` streams only -- no
framework dependency) in front of :class:`~repro.scenarios.jobs.JobManager`.
Requests are parsed by hand, every response closes its connection, and
progress streams use chunked transfer encoding with one JSON object per line
(NDJSON), so any stock HTTP client -- ``curl``, :mod:`http.client`,
``urllib`` -- can drive it.

API surface (see ``docs/service.md`` for the full contract):

========================  =====================================================
``GET  /healthz``          liveness: ``{"ok": true}`` once the loop is serving
``GET  /stats``            queue depth, dedup counters, job states, store stats
``POST /v1/jobs``          submit ``{"suite": ...}`` or ``{"scenario": ...}``
                           (+ ``{"options": {"jobs": N, "prebuild": bool}}``);
                           responds with the job descriptor plus its dedup
                           disposition (``new`` / ``inflight`` / ``cached``)
``GET  /v1/jobs``          all job descriptors (newest last)
``GET  /v1/jobs/ID``         one job descriptor (poll this for state)
``GET  /v1/jobs/ID/events``  NDJSON progress stream until the job is terminal
``GET  /v1/jobs/ID/report``  the persisted SuiteReport JSON, byte-for-byte
                           identical for every client of the fingerprint
``POST /v1/jobs/ID/cancel``  cooperative cancellation
========================  =====================================================

Errors are JSON bodies ``{"error": {"code", "message"}}``; submission
validation failures surface the underlying spec error message (unknown keys,
bad types, missing fields) so a client can fix its payload without reading
server logs.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.scenarios.jobs import FaultPlan, Job, JobManager, JobRejected, parse_submission

#: Submission bodies above this size are rejected with 413 (a suite manifest
#: of hundreds of inline scenarios fits comfortably under it).
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """An error response: status + machine code + human message."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


def _json_bytes(payload: Any) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode()


def _response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode() + body


def _error_response(error: HttpError) -> bytes:
    return _response(
        error.status,
        _json_bytes({"error": {"code": error.code, "message": error.message}}),
    )


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one HTTP/1.1 request: (method, path, headers, body)."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        raise HttpError(400, "bad-request", "unreadable request line") from None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, "bad-request", f"malformed request line: {parts!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        text = line.decode("latin-1").strip()
        if not text:
            break
        name, sep, value = text.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    body = b""
    if method in ("POST", "PUT"):
        length_text = headers.get("content-length")
        if length_text is None:
            raise HttpError(411, "length-required", "POST needs a Content-Length header")
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, "bad-request", f"bad Content-Length: {length_text!r}") from None
        if length > MAX_BODY_BYTES:
            raise HttpError(
                413, "too-large", f"body of {length} bytes exceeds {MAX_BODY_BYTES}"
            )
        body = await reader.readexactly(length)
    # Strip query strings; the API is purely path-addressed.
    path = target.split("?", 1)[0]
    return method, path, headers, body


class ScenarioService:
    """The asyncio HTTP server in front of one :class:`JobManager`."""

    def __init__(
        self, manager: JobManager, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        await self.manager.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.shutdown()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, _headers, body = await _read_request(reader)
                await self._route(method, path, body, writer)
            except HttpError as error:
                writer.write(_error_response(error))
            except (ConnectionError, asyncio.IncompleteReadError):
                return  # client went away mid-request; nothing to answer
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                writer.write(
                    _error_response(
                        HttpError(500, "internal", f"{type(exc).__name__}: {exc}")
                    )
                )
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _route(
        self, method: str, path: str, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        segments = [part for part in path.split("/") if part]
        if path == "/healthz":
            self._require(method, "GET", path)
            writer.write(_response(200, _json_bytes({"ok": True, "service": "repro"})))
            return
        if path == "/stats":
            self._require(method, "GET", path)
            writer.write(_response(200, _json_bytes(self.manager.stats())))
            return
        if segments[:2] == ["v1", "jobs"]:
            if len(segments) == 2:
                if method == "POST":
                    self._submit(body, writer)
                    return
                self._require(method, "GET", path)
                writer.write(
                    _response(
                        200,
                        _json_bytes(
                            {"jobs": [job.describe() for job in self.manager.jobs.values()]}
                        ),
                    )
                )
                return
            job = self._job_or_404(segments[2])
            if len(segments) == 3:
                self._require(method, "GET", path)
                writer.write(_response(200, _json_bytes({"job": job.describe()})))
                return
            if len(segments) == 4:
                action = segments[3]
                if action == "report":
                    self._require(method, "GET", path)
                    self._report(job, writer)
                    return
                if action == "events":
                    self._require(method, "GET", path)
                    await self._stream_events(job, writer)
                    return
                if action == "cancel":
                    self._require(method, "POST", path)
                    live = self.manager.cancel(job)
                    writer.write(
                        _response(
                            200,
                            _json_bytes({"job": job.describe(), "cancelled": live}),
                        )
                    )
                    return
        raise HttpError(404, "not-found", f"no route for {path!r}")

    @staticmethod
    def _require(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise HttpError(
                405, "method-not-allowed", f"{path} supports {expected}, not {method}"
            )

    def _job_or_404(self, job_id: str) -> Job:
        job = self.manager.get(job_id)
        if job is None:
            raise HttpError(404, "unknown-job", f"no job {job_id!r}")
        return job

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def _submit(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpError(400, "bad-json", f"body is not valid JSON: {exc}") from None
        try:
            suite, options = parse_submission(payload)
            job, disposition = self.manager.submit(suite, options)
        except JobRejected as exc:
            raise HttpError(400, "rejected", str(exc)) from None
        if disposition == "rejected":
            # Queue-depth backpressure: the job descriptor (terminal state
            # "rejected", error explaining the bound) still comes back, so a
            # client can inspect what it hit and retry later.
            status = 429
        elif disposition == "new":
            status = 201
        else:
            status = 200
        writer.write(
            _response(
                status,
                _json_bytes({"job": job.describe(), "dedup": disposition}),
            )
        )

    def _report(self, job: Job, writer: asyncio.StreamWriter) -> None:
        if job.state == "failed":
            raise HttpError(409, "job-failed", job.error or "job failed")
        if job.state == "cancelled":
            raise HttpError(409, "job-cancelled", "job was cancelled before completing")
        data = self.manager.report_bytes(job)
        if data is None:
            raise HttpError(
                409,
                "not-finished",
                f"job {job.id} is {job.state}; poll /v1/jobs/{job.id} or stream "
                f"/v1/jobs/{job.id}/events until it is done",
            )
        writer.write(_response(200, data))

    async def _stream_events(self, job: Job, writer: asyncio.StreamWriter) -> None:
        """Chunked NDJSON: snapshot first, then live events until terminal."""
        writer.write(
            (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Transfer-Encoding: chunked\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode()
        )

        def chunk(payload: Mapping[str, Any]) -> bytes:
            data = _json_bytes(payload)
            return f"{len(data):x}\r\n".encode() + data + b"\r\n"

        # Subscribe *before* the snapshot: every event after the snapshot's
        # state lands in the queue, so the stream never misses a transition.
        queue = self.manager.subscribe(job)
        try:
            writer.write(chunk({"event": "snapshot", **job.describe()}))
            await writer.drain()
            while not job.terminal:
                event = await queue.get()
                writer.write(chunk(event))
                await writer.drain()
                if event.get("event") == "state" and event.get("state") in (
                    "done",
                    "failed",
                    "cancelled",
                ):
                    break
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        finally:
            self.manager.unsubscribe(job, queue)


# ----------------------------------------------------------------------
# embedding + CLI entry points
# ----------------------------------------------------------------------
class ThreadedService:
    """Run a :class:`ScenarioService` on a background thread (tests, examples).

    ``start()`` blocks until the server is accepting connections and returns
    the base URL; ``stop()`` performs the same graceful shutdown as SIGTERM
    (in-flight suites checkpoint and their jobs stay journaled).
    """

    def __init__(self, manager_kwargs: Dict[str, Any], host: str = "127.0.0.1") -> None:
        self.manager_kwargs = manager_kwargs
        self.host = host
        self.url: Optional[str] = None
        self.manager: Optional[JobManager] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> str:
        self._thread = threading.Thread(target=self._run, name="repro-service", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        assert self.url is not None
        return self.url

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            self.manager = JobManager(**self.manager_kwargs)
            service = ScenarioService(self.manager, host=self.host, port=0)
            await service.start()
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._startup_error = exc
            self._ready.set()
            return
        self.url = service.url
        self._ready.set()
        await self._stop_event.wait()
        await service.stop()

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None and not self._loop.is_closed():
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # loop closed between the check and the call
                pass
        if self._thread is not None:
            self._thread.join(timeout=60)


async def _serve_async(
    host: str,
    port: int,
    manager: JobManager,
    quiet: bool = False,
) -> int:
    service = ScenarioService(manager, host=host, port=port)
    await service.start()
    recovered = [job for job in manager.jobs.values() if not job.terminal]
    # The ready line is part of the interface: the test harness and the CI
    # smoke job parse the URL (the OS picks the port under --port 0).
    print(f"repro service listening on {service.url}", flush=True)
    if not quiet:
        print(
            f"store {manager.store.root} | {manager.workers} worker(s) | "
            f"{len(recovered)} job(s) recovered from the journal",
            flush=True,
        )
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop_event.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-POSIX
            pass
    await stop_event.wait()
    if not quiet:
        print("shutting down: checkpointing in-flight jobs", flush=True)
    await service.stop()
    return 0


def serve_main(
    host: str = "127.0.0.1",
    port: int = 8653,
    store: str = "repro-store",
    workers: int = 2,
    jobs: int = 1,
    prebuild: bool = False,
    retries: int = 2,
    backoff_s: float = 0.25,
    timeout_s: Optional[float] = None,
    quiet: bool = False,
    fleet: int = 0,
    fleet_threshold: int = 32,
    max_pending_tasks: Optional[int] = None,
) -> int:
    """The blocking ``python -m repro serve`` entry point."""
    fault_plan = FaultPlan.from_env(os.environ.get("REPRO_SERVICE_FAULT"))
    manager = JobManager(
        store=store,
        workers=workers,
        retries=retries,
        backoff_s=backoff_s,
        timeout_s=timeout_s,
        default_jobs=jobs,
        default_prebuild=prebuild,
        fault_plan=fault_plan,
        fleet_workers=fleet,
        fleet_threshold=fleet_threshold,
        max_pending_tasks=max_pending_tasks,
    )
    try:
        return asyncio.run(_serve_async(host, port, manager, quiet=quiet))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C without handler
        return 130
