"""Scenario suites: many specs, one report.

A :class:`SuiteSpec` is a JSON manifest of scenario entries that run as one
unit and reduce -- through the declarative metrics pipeline
(:mod:`repro.scenarios.metrics`) -- into one :class:`SuiteReport`.  It is the
layer the benchmark harnesses were hand-rolling: "run these N configurations,
pool their per-trial metric rows by experimental condition, print one table".

Like :class:`~repro.scenarios.spec.ScenarioSpec`, a suite round-trips
losslessly through JSON and carries a stable content fingerprint.  The
manifest *file* format additionally accepts load-time sugar that disappears
on resolution (see :meth:`SuiteSpec.from_dict`):

* ``"path"`` entries referencing scenario JSON files relative to the
  manifest;
* suite-level ``"defaults"`` (dotted-path overrides applied to every entry)
  and per-entry ``"overrides"``;
* suite-level ``"metrics"`` applied to entries whose scenarios declare none.

Execution (:func:`run_suite`) flattens every entry's trials into one task
list and fans it out over the
:class:`~repro.analysis.sweep.ParallelSweepRunner` -- per-spec *and*
per-trial parallelism in one pool, workers receiving serialized specs only --
with scheduler-delta tables prebuilt (and optionally disk-cached) under each
entry's fingerprint exactly as :func:`repro.scenarios.runtime.run_many` does.
Trial metric rows are byte-identical to serial :func:`repro.scenarios.runtime.run`
execution; entries sharing a ``group`` label pool their rows into group
aggregates, which is how a suite reproduces a benchmark's
several-specs-per-table-row arithmetic exactly.

The flattened task list is also the unit of *distribution* and *durability*:

* a content-addressed :class:`~repro.scenarios.store.ResultStore` consulted
  per task skips every trial whose record is already stored;
* :func:`run_suite_shard` executes one deterministic ``k/N`` partition of the
  task list and :func:`merge_reports` reassembles complete shard sets into
  the same :class:`SuiteReport` an unsharded run produces;
* a JSONL checkpoint (``checkpoint=``/``resume=``) persists each finished
  task record as it lands, so a killed run resumes without recomputing.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.sweep import (
    SCHEDULER_DELTA_TABLE_KWARG,
    ParallelSweepRunner,
    format_table,
)
from repro.scenarios.metrics import aggregate_metric_rows, flatten_aggregates
from repro.scenarios.registry import ENVIRONMENTS
from repro.scenarios.runtime import (
    RunResult,
    _aggregate,
    absorb_trial_record,
    prebuild_delta_table,
    trial_record,
)
from repro.scenarios.spec import (
    MetricSpec,
    ScenarioSpec,
    _json_canonical,
    _reject_unknown_keys,
)
from repro.scenarios.store import ResultStore

#: Suite manifest schema version (independent of the scenario spec version).
SUITE_VERSION = 1


class SuiteCancelled(RuntimeError):
    """Raised when a ``should_stop`` hook halts suite execution.

    Execution stops between tasks: every record already handed to the
    checkpoint/store is durable, the in-flight trial (if any) is abandoned,
    and the checkpoint file is *not* deleted -- a later run with
    ``resume=True`` (or a warm store) picks up exactly where this one
    stopped.  The scenario service maps job cancellation and graceful
    shutdown onto this exception.
    """


@dataclass(frozen=True)
class SuiteEntry:
    """One scenario inside a suite, with its pooling group label.

    Entries with the same ``group`` pool their per-trial metric rows in the
    report's group aggregates; ``group`` defaults to the entry ``id`` (one
    group per entry).
    """

    id: str
    scenario: ScenarioSpec
    group: str = ""

    def __post_init__(self) -> None:
        if not self.id or not isinstance(self.id, str):
            raise ValueError("suite entry needs a non-empty id string")
        if not isinstance(self.scenario, ScenarioSpec):
            raise TypeError("suite entry scenario must be a ScenarioSpec")

    @property
    def group_label(self) -> str:
        return self.group or self.id

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"id": self.id, "scenario": self.scenario.to_dict()}
        if self.group:
            data["group"] = self.group
        return data


@dataclass(frozen=True)
class SuiteSpec:
    """A serializable manifest of scenarios run (and reported) as one unit."""

    name: str
    entries: Tuple[SuiteEntry, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("suite needs a non-empty name string")
        object.__setattr__(self, "entries", tuple(self.entries))
        if not self.entries:
            raise ValueError("suite needs at least one entry")
        ids = [entry.id for entry in self.entries]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate suite entry ids: {sorted(ids)}")
        # Pooled group aggregates assume every member declares the same
        # metrics (ratio/rate definitions are taken once per group); a mixed
        # group would silently lose pooled columns, so reject it up front.
        metric_names_by_group: Dict[str, Tuple[str, ...]] = {}
        for entry in self.entries:
            names = tuple(metric.name for metric in entry.scenario.metrics)
            previous = metric_names_by_group.setdefault(entry.group_label, names)
            if previous != names:
                raise ValueError(
                    f"suite group {entry.group_label!r} mixes metric declarations "
                    f"({list(previous)} vs {list(names)} on entry {entry.id!r}); "
                    "entries pooled into one group must declare the same metrics"
                )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The fully-resolved canonical form (all scenarios inline)."""
        return {
            "version": SUITE_VERSION,
            "name": self.name,
            "description": self.description,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], base_dir: Optional[str] = None
    ) -> "SuiteSpec":
        """Parse a manifest, resolving the load-time sugar.

        Each entry carries either an inline ``"scenario"`` dict or a
        ``"path"`` to a scenario JSON file (resolved against ``base_dir``,
        which :meth:`load` sets to the manifest's directory; ``"path"``
        entries are rejected without one).  Suite-level ``"defaults"`` are
        dotted-path overrides applied to every entry, then per-entry
        ``"overrides"`` on top; suite-level ``"metrics"`` are attached to any
        entry whose scenario declares none.  The resulting suite is fully
        inline -- :meth:`to_dict` never re-emits the sugar.
        """
        _reject_unknown_keys(
            data,
            ("version", "name", "description", "defaults", "metrics", "entries"),
            "suite spec",
        )
        version = data.get("version", SUITE_VERSION)
        if version != SUITE_VERSION:
            raise ValueError(
                f"unsupported suite spec version {version!r} (expected {SUITE_VERSION})"
            )
        defaults = dict(data.get("defaults", {}))
        suite_metrics = tuple(
            MetricSpec.from_dict(entry) for entry in data.get("metrics", [])
        )
        raw_entries = data.get("entries")
        if not raw_entries:
            raise ValueError("suite spec needs a non-empty 'entries' list")
        entries: List[SuiteEntry] = []
        for index, raw in enumerate(raw_entries):
            where = f"suite entry #{index}"
            _reject_unknown_keys(
                raw, ("id", "group", "scenario", "path", "overrides"), where
            )
            if ("scenario" in raw) == ("path" in raw):
                raise ValueError(f"{where} needs exactly one of 'scenario' or 'path'")
            if "scenario" in raw:
                scenario = ScenarioSpec.from_dict(raw["scenario"])
            else:
                if base_dir is None:
                    raise ValueError(
                        f"{where} references a path but the manifest was parsed "
                        "without a base directory (use SuiteSpec.load)"
                    )
                scenario = ScenarioSpec.load(os.path.join(base_dir, raw["path"]))
            overrides = {**defaults, **dict(raw.get("overrides", {}))}
            if overrides:
                scenario = scenario.with_overrides(overrides)
            if suite_metrics and not scenario.metrics:
                scenario = scenario.with_metrics(*suite_metrics)
            entries.append(
                SuiteEntry(
                    id=raw.get("id", scenario.name),
                    scenario=scenario,
                    group=raw.get("group", ""),
                )
            )
        return cls(
            name=data.get("name", "suite"),
            description=data.get("description", ""),
            entries=tuple(entries),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str, base_dir: Optional[str] = None) -> "SuiteSpec":
        return cls.from_dict(json.loads(text), base_dir=base_dir)

    @classmethod
    def load(cls, path: str) -> "SuiteSpec":
        """Read a suite manifest (the ``python -m repro suite`` input)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read(), base_dir=os.path.dirname(path) or ".")

    def save(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
        return path

    def fingerprint(self) -> str:
        """SHA-256 content hash of the canonical (resolved) form, truncated.

        Entry scenarios are already fingerprint-stable
        (:meth:`~repro.scenarios.spec.ScenarioSpec.fingerprint`); the suite
        fingerprint extends the same identity over the manifest, so CI can
        pin "this checked-in manifest is exactly the programmatic suite".
        """
        import hashlib

        payload = _json_canonical(self.to_dict()).encode()
        return hashlib.sha256(payload).hexdigest()[:16]

    @property
    def groups(self) -> Tuple[str, ...]:
        """Group labels in first-appearance order."""
        seen: Dict[str, None] = {}
        for entry in self.entries:
            seen.setdefault(entry.group_label)
        return tuple(seen)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def run_suite_task(
    task: int = 0,
    suite_specs: Optional[Sequence[str]] = None,
    suite_tasks: Optional[Sequence[Tuple[int, int]]] = None,
) -> Dict[str, Any]:
    """Worker target for :func:`run_suite` (module-level, hence picklable).

    ``suite_specs`` holds every entry's serialized scenario and
    ``suite_tasks`` the flattened ``(entry_index, trial_index)`` list, both
    shipped through the sweep's ``common`` mapping; ``task`` indexes one
    trial.  Executes through :func:`repro.scenarios.runtime.trial_record`
    (hence :func:`repro.scenarios.runtime.run_trial`, the same code path as
    serial runs), so metric rows match byte for byte.
    """
    if suite_specs is None or suite_tasks is None:
        raise ValueError("run_suite_task needs suite_specs and suite_tasks")
    entry_index, trial_index = suite_tasks[task]
    spec = ScenarioSpec.from_json(suite_specs[entry_index])
    return {"entry_index": entry_index, "trial": trial_record(spec, trial_index)}


@dataclass
class SuiteEntryResult:
    """One suite entry's executed outcome (a :class:`RunResult` plus identity)."""

    entry: SuiteEntry
    result: RunResult

    @property
    def row(self) -> Dict[str, Any]:
        """A flat table record for this entry."""
        record = {
            "id": self.entry.id,
            "group": self.entry.group_label,
            "fingerprint": self.result.fingerprint,
        }
        record.update(self.result.metrics)
        return record


@dataclass
class SuiteReport:
    """The outcome of :func:`run_suite`: per-entry results + group aggregates.

    ``group_summaries`` maps each group label to the
    :func:`repro.scenarios.metrics.aggregate_metric_rows` statistics over the
    *pooled* per-trial metric rows of every entry in the group -- pooled
    ratios and rates (with Wilson intervals), not means of means.
    """

    suite: SuiteSpec
    fingerprint: str
    entries: List[SuiteEntryResult] = field(default_factory=list)
    group_summaries: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    elapsed_s: float = 0.0
    #: Cache accounting when the run used a result store, checkpoint, or
    #: merge: ``tasks`` total, ``resumed`` from a checkpoint, ``hits`` served
    #: by the store, ``misses`` actually executed.  ``None`` on plain runs.
    store_stats: Optional[Dict[str, int]] = None

    def __bool__(self) -> bool:
        return any(result.result for result in self.entries)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def entry_rows(self) -> List[Dict[str, Any]]:
        return [entry.row for entry in self.entries]

    def group_metrics(self, group: str) -> Dict[str, Any]:
        """The flat pooled-aggregate record of one group."""
        return flatten_aggregates(self.group_summaries.get(group, {}))

    def group_rows(self) -> List[Dict[str, Any]]:
        """One flat record per group: counts plus pooled metric aggregates."""
        rows = []
        for group in self.suite.groups:
            members = [e for e in self.entries if e.entry.group_label == group]
            record: Dict[str, Any] = {
                "group": group,
                "entries": len(members),
                "trials": sum(len(e.result.trials) for e in members),
                "rounds": sum(e.result.metrics.get("rounds", 0) for e in members),
            }
            record.update(self.group_metrics(group))
            rows.append(record)
        return rows

    # ------------------------------------------------------------------
    # renderers
    # ------------------------------------------------------------------
    def format_table(
        self, columns: Optional[Sequence[str]] = None, by: str = "group"
    ) -> str:
        """An aligned text table (``by="group"`` pooled or ``by="entry"``)."""
        rows = self.group_rows() if by == "group" else self.entry_rows()
        return format_table(
            rows, columns=columns, title=f"suite {self.suite.name} (by {by}):"
        )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable report (what ``python -m repro suite --json`` writes).

        The ``store`` key (cache accounting) appears only when the run used a
        result store, checkpoint, or shard merge; strip wall-clock keys with
        :func:`deterministic_report_dict` before comparing reports across
        runs.
        """
        data: Dict[str, Any] = {
            "suite": self.suite.to_dict(),
            "fingerprint": self.fingerprint,
            "elapsed_s": self.elapsed_s,
            "entries": [
                {
                    "id": e.entry.id,
                    "group": e.entry.group_label,
                    "result": e.result.to_dict(),
                }
                for e in self.entries
            ],
            "groups": {
                group: {key: dict(entry) for key, entry in summaries.items()}
                for group, summaries in self.group_summaries.items()
            },
        }
        if self.store_stats is not None:
            data["store"] = dict(self.store_stats)
        return data

    def to_markdown(self, by: str = "group") -> str:
        """The report as a GitHub-flavored markdown table."""
        rows = self.group_rows() if by == "group" else self.entry_rows()
        if not rows:
            return f"## Suite `{self.suite.name}`\n\n(no results)\n"
        columns = list(rows[0])

        def render(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.6g}"
            return str(value)

        lines = [
            f"## Suite `{self.suite.name}` (fingerprint `{self.fingerprint}`)",
            "",
        ]
        if self.suite.description:
            lines.extend([self.suite.description, ""])
        lines.append("| " + " | ".join(columns) + " |")
        lines.append("|" + "|".join(" --- " for _ in columns) + "|")
        for row in rows:
            lines.append(
                "| " + " | ".join(render(row.get(col, "")) for col in columns) + " |"
            )
        lines.append("")
        return "\n".join(lines)


def _flatten_tasks(suite: SuiteSpec) -> List[Tuple[int, int]]:
    """The suite's canonical task list: ``(entry_index, trial_index)`` pairs.

    Entries in manifest order, trials in index order.  Every execution mode
    (serial, pooled, sharded, resumed) works over this one ordering, which is
    what makes shard partitions and checkpoint files stable across processes
    and worker counts.
    """
    tasks: List[Tuple[int, int]] = []
    for entry_index, entry in enumerate(suite.entries):
        for trial_index in range(entry.scenario.run.trials):
            tasks.append((entry_index, trial_index))
    return tasks


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse a ``"k/N"`` shard selector (1-based) into ``(k, N)``."""
    parts = str(text).split("/")
    try:
        if len(parts) != 2:
            raise ValueError
        index, count = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(
            f"shard selector must look like 'k/N' (e.g. '1/4'), got {text!r}"
        ) from None
    if count < 1 or not 1 <= index <= count:
        raise ValueError(
            f"shard selector {text!r} out of range: need 1 <= k <= N with N >= 1"
        )
    return index, count


def shard_tasks(task_count: int, shard_index: int, shard_count: int) -> List[int]:
    """Task indices belonging to shard ``k`` of ``N`` (1-based).

    Task ``i`` goes to shard ``(i % N) + 1``: round-robin over the canonical
    task order, so a suite whose entries differ wildly in cost still spreads
    each entry's trials across all shards.
    """
    if shard_count < 1 or not 1 <= shard_index <= shard_count:
        raise ValueError(
            f"shard {shard_index}/{shard_count} out of range: need 1 <= k <= N"
        )
    return [i for i in range(task_count) if i % shard_count == shard_index - 1]


@dataclass
class SuiteShard:
    """One shard's executed slice of a suite.

    Holds the trial records (:func:`repro.scenarios.runtime.trial_record`
    wire format) of every task index in the shard's deterministic partition,
    plus enough identity -- suite fingerprint, ``k/N`` position, total task
    count -- for :func:`merge_reports` to validate that a shard set is
    complete and belongs together before assembling the report.
    """

    suite_fingerprint: str
    shard_index: int
    shard_count: int
    task_count: int
    records: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    elapsed_s: float = 0.0
    stats: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "suite": self.suite_fingerprint,
            "shard": [self.shard_index, self.shard_count],
            "tasks": self.task_count,
            "elapsed_s": self.elapsed_s,
            "stats": dict(self.stats),
            "records": {str(index): record for index, record in self.records.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SuiteShard":
        _reject_unknown_keys(
            data, ("suite", "shard", "tasks", "elapsed_s", "stats", "records"),
            "suite shard",
        )
        shard = data.get("shard")
        if not isinstance(shard, (list, tuple)) or len(shard) != 2:
            raise ValueError("suite shard needs a 2-element 'shard' [k, N] field")
        return cls(
            suite_fingerprint=data["suite"],
            shard_index=int(shard[0]),
            shard_count=int(shard[1]),
            task_count=int(data["tasks"]),
            records={int(index): record for index, record in data.get("records", {}).items()},
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            stats={key: int(value) for key, value in data.get("stats", {}).items()},
        )

    def save(self, path: str) -> str:
        """Serialize atomically (temp file + rename), so a concurrent merge
        never reads a half-written shard."""
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str) -> "SuiteShard":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def _checkpoint_header(suite: SuiteSpec, shard_index: int, shard_count: int) -> Dict[str, Any]:
    return {
        "checkpoint": 1,
        "suite": suite.fingerprint(),
        "shard": [shard_index, shard_count],
        "tasks": len(_flatten_tasks(suite)),
    }


def _checkpoint_line(payload: Mapping[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def _load_checkpoint(path: str, header: Mapping[str, Any]) -> Dict[int, Dict[str, Any]]:
    """Read a checkpoint's finished-task records, validating its identity.

    The first line must match the expected header exactly -- resuming under
    the wrong suite or shard position fails loudly instead of silently mixing
    records.  Later lines that fail to parse (typically one partial trailing
    line from a kill mid-append) are skipped with a :class:`RuntimeWarning`.
    """
    records: Dict[int, Dict[str, Any]] = {}
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline()
        try:
            found = json.loads(first)
        except json.JSONDecodeError:
            raise ValueError(f"checkpoint {path!r} has an unreadable header line") from None
        if found != dict(header):
            raise ValueError(
                f"checkpoint {path!r} belongs to a different run "
                f"(header {found!r}, expected {dict(header)!r}); delete it or "
                "point --resume at the matching suite and shard"
            )
        skipped = 0
        for line in handle:
            try:
                payload = json.loads(line)
                records[int(payload["task"])] = payload["record"]
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                skipped += 1
        if skipped:
            warnings.warn(
                f"checkpoint {path!r}: skipped {skipped} unreadable line(s) "
                "(expected after a kill mid-append); the affected task(s) will "
                "be re-executed",
                RuntimeWarning,
                stacklevel=2,
            )
    return records


def _execute_tasks(
    suite: SuiteSpec,
    task_indices: Sequence[int],
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    prebuild: bool = True,
    store: Any = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    shard_index: int = 1,
    shard_count: int = 1,
    on_progress: Optional[Any] = None,
    should_stop: Optional[Any] = None,
) -> Tuple[Dict[int, Dict[str, Any]], Dict[str, int]]:
    """Produce the trial record of every requested task index.

    The shared execution core behind :func:`run_suite` and
    :func:`run_suite_shard`.  Records come, in priority order, from the
    resume checkpoint, then the result store, and only then from actual
    execution (serial or pooled); computed records are written back to the
    store and appended -- fsynced, in canonical task order -- to the
    checkpoint as they finish, so a killed run loses at most the in-flight
    trials.  Returns the records plus accounting
    (``tasks``/``resumed``/``hits``/``misses``).

    ``on_progress`` (a callable taking one dict) receives a ``"plan"`` event
    once the checkpoint/store have been consulted (with the
    resumed/hit/miss split) and a ``"task"`` event after every executed
    record lands (after it has been checkpointed and stored, so a consumer
    that persists the event never gets ahead of durability).  ``should_stop``
    (a zero-argument callable) is polled between tasks; returning true raises
    :class:`SuiteCancelled` with everything completed so far already durable.
    """
    store = ResultStore.coerce(store)
    tasks = _flatten_tasks(suite)
    specs = [entry.scenario for entry in suite.entries]
    header = _checkpoint_header(suite, shard_index, shard_count)
    records: Dict[int, Dict[str, Any]] = {}
    stats = {"tasks": len(task_indices), "resumed": 0, "hits": 0, "misses": 0}

    if checkpoint is not None and resume and os.path.exists(checkpoint):
        loaded = _load_checkpoint(checkpoint, header)
        for index in task_indices:
            if index in loaded:
                records[index] = loaded[index]
        stats["resumed"] = len(records)
    for index in task_indices:
        if store is None:
            break
        if index in records:
            continue
        entry_index, trial_index = tasks[index]
        hit = store.get(specs[entry_index], trial_index)
        if hit is not None:
            records[index] = hit
            stats["hits"] += 1
    pending = [index for index in task_indices if index not in records]
    stats["misses"] = len(pending)

    total = len(task_indices)
    if on_progress is not None:
        on_progress(
            {
                "event": "plan",
                "tasks": total,
                "resumed": stats["resumed"],
                "hits": stats["hits"],
                "misses": stats["misses"],
            }
        )
    if should_stop is not None and should_stop():
        raise SuiteCancelled(f"cancelled before execution ({len(records)}/{total} tasks done)")

    checkpoint_handle = None
    if checkpoint is not None:
        resuming = resume and os.path.exists(checkpoint)
        directory = os.path.dirname(checkpoint)
        if directory:
            os.makedirs(directory, exist_ok=True)
        checkpoint_handle = open(checkpoint, "a" if resuming else "w", encoding="utf-8")
        if not resuming:
            checkpoint_handle.write(_checkpoint_line(header))
            checkpoint_handle.flush()
            os.fsync(checkpoint_handle.fileno())
    try:
        if pending:
            common: Dict[str, Any] = {
                "suite_specs": [spec.to_json(indent=None) for spec in specs],
                "suite_tasks": tasks,
            }
            if prebuild:
                # Only entries that still have work pending pay the prebuild;
                # a warm store or checkpoint skips it entirely.
                pending_entries = {tasks[index][0] for index in pending}
                # Sparse-workload classification comes from environment
                # registration metadata (Registry.workload), not name
                # matching, so downstream-registered environments -- and the
                # queued/traffic family, which is dense -- classify correctly.
                sparse = [
                    suite.entries[entry_index].id
                    for entry_index in sorted(pending_entries)
                    if ENVIRONMENTS.workload(specs[entry_index].environment.name)
                    == "sparse"
                ]
                if sparse:
                    shown = ", ".join(sparse[:3]) + (", ..." if len(sparse) > 3 else "")
                    warnings.warn(
                        f"run_suite(prebuild=True): skipping the scheduler-delta prebuild "
                        f"for {len(sparse)} sparse-workload (e.g. single-shot) "
                        f"entr{'y' if len(sparse) == 1 else 'ies'} "
                        f"({shown}) -- a sparse workload leaves most of its run idle, so "
                        "lazy per-round deltas beat a full-table prebuild; pass "
                        "prebuild=False to silence this when the whole suite is sparse",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                merged: Dict[Tuple[Hashable, int], Tuple[int, ...]] = {}
                seen_fingerprints = set()
                for entry_index in sorted(pending_entries):
                    spec = specs[entry_index]
                    if ENVIRONMENTS.workload(spec.environment.name) == "sparse":
                        continue
                    fingerprint = spec.fingerprint()
                    if fingerprint in seen_fingerprints:
                        continue
                    seen_fingerprints.add(fingerprint)
                    try:
                        table = prebuild_delta_table(spec, cache_dir=cache_dir)
                    except (KeyError, TypeError, ValueError):
                        # A broken entry fails loudly when it actually runs;
                        # the prebuild pass is best-effort, as in run_many.
                        continue
                    if table:
                        merged.update(table)
                if merged:
                    common[SCHEDULER_DELTA_TABLE_KWARG] = merged

            def on_result(row: Dict[str, Any]) -> None:
                index = row["task"]
                trial = row["trial"]
                records[index] = trial
                entry_index, trial_index = tasks[index]
                if store is not None:
                    store.put(specs[entry_index], trial_index, trial)
                if checkpoint_handle is not None:
                    checkpoint_handle.write(
                        _checkpoint_line({"task": index, "record": trial})
                    )
                    checkpoint_handle.flush()
                    os.fsync(checkpoint_handle.fileno())
                if on_progress is not None:
                    on_progress(
                        {
                            "event": "task",
                            "task": index,
                            "entry": entry_index,
                            "trial": trial_index,
                            "done": len(records),
                            "total": total,
                        }
                    )
                if should_stop is not None and should_stop():
                    raise SuiteCancelled(
                        f"cancelled after {len(records)}/{total} tasks "
                        "(completed records are checkpointed)"
                    )

            runner = ParallelSweepRunner(jobs=jobs)
            runner.run(
                {"task": list(pending)}, run_suite_task, common=common,
                on_result=on_result,
            )
    finally:
        if checkpoint_handle is not None:
            checkpoint_handle.close()
    return records, stats


def _assemble_report(
    suite: SuiteSpec, records: Mapping[int, Mapping[str, Any]]
) -> SuiteReport:
    """Build the :class:`SuiteReport` from a complete task-index -> record map.

    The single assembly path shared by unsharded runs and shard merges:
    records absorb in canonical task order, so the report is identical no
    matter which processes executed which tasks.
    """
    tasks = _flatten_tasks(suite)
    results = [
        RunResult(spec=entry.scenario, fingerprint=entry.scenario.fingerprint())
        for entry in suite.entries
    ]
    for index, (entry_index, _trial_index) in enumerate(tasks):
        absorb_trial_record(results[entry_index], records[index])
    for result in results:
        _aggregate(result)

    report = SuiteReport(suite=suite, fingerprint=suite.fingerprint())
    report.entries = [
        SuiteEntryResult(entry=entry, result=result)
        for entry, result in zip(suite.entries, results)
    ]
    for group in suite.groups:
        members = [e for e in report.entries if e.entry.group_label == group]
        pooled_rows: List[Dict[str, Any]] = []
        for member in members:
            pooled_rows.extend(member.result.metric_rows)
        # Ratio/rate definitions come from the group's first entry -- safe
        # because SuiteSpec rejects groups whose members declare different
        # metrics at construction time.
        metric_specs = members[0].entry.scenario.metrics if members else ()
        report.group_summaries[group] = aggregate_metric_rows(metric_specs, pooled_rows)
    return report


def run_suite(
    suite: SuiteSpec,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    prebuild: bool = True,
    store: Any = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    on_progress: Optional[Any] = None,
    should_stop: Optional[Any] = None,
) -> SuiteReport:
    """Execute every trial of every entry and aggregate into a :class:`SuiteReport`.

    Parameters mirror :func:`repro.scenarios.runtime.run_many`: ``jobs``
    above 1 runs the flattened (entry, trial) task list on a process pool
    (``None`` = all cores, <2 = serial); ``prebuild`` computes each cacheable
    entry's scheduler-delta table once in the parent -- keyed by the entry
    spec's fingerprint, optionally persisted under ``cache_dir`` -- and ships
    the merged table to workers through the pool initializer.

    Sparse workloads are auto-skipped by the prebuild pass: environments
    registered with ``workload="sparse"`` (the ``single_shot`` family; see
    :meth:`repro.scenarios.registry.Registry.workload`) leave most of their
    (typically t_ack-long) runs idle, so the lazily computed per-round deltas
    touch only a fraction of the rounds a full-table prebuild would pay for
    upfront.  Such entries run with lazy deltas and a :class:`RuntimeWarning`
    notes the skip; pass ``prebuild=False`` to silence it when the whole
    suite is sparse.  Dense environments -- including the queue-backed
    ``queued`` workload -- keep the prebuild.

    ``store`` (a :class:`~repro.scenarios.store.ResultStore` or its root
    path) serves already-computed trials from the content-addressed result
    store and writes fresh ones back, making a warm rerun pure assembly --
    cached records are absorbed verbatim, so the report matches the cold
    run's byte for byte.  ``checkpoint`` names a JSONL file that accumulates
    finished task records (fsynced per append); with ``resume=True`` an
    existing checkpoint's records are trusted instead of re-executed, and the
    file is deleted once the run completes.  Either facility sets the
    report's ``store_stats``.

    ``on_progress`` / ``should_stop`` stream per-task progress events and
    cooperatively cancel the run (see :func:`_execute_tasks` /
    :class:`SuiteCancelled`); a cancelled run keeps its checkpoint, so the
    next ``resume=True`` run continues instead of restarting.
    """
    start = time.perf_counter()
    task_count = len(_flatten_tasks(suite))
    records, stats = _execute_tasks(
        suite,
        list(range(task_count)),
        jobs=jobs,
        cache_dir=cache_dir,
        prebuild=prebuild,
        store=store,
        checkpoint=checkpoint,
        resume=resume,
        on_progress=on_progress,
        should_stop=should_stop,
    )
    report = _assemble_report(suite, records)
    if store is not None or checkpoint is not None:
        report.store_stats = stats
    if checkpoint is not None and os.path.exists(checkpoint):
        os.remove(checkpoint)
    report.elapsed_s = time.perf_counter() - start
    return report


def run_suite_shard(
    suite: SuiteSpec,
    shard_index: int,
    shard_count: int,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    prebuild: bool = True,
    store: Any = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    on_progress: Optional[Any] = None,
    should_stop: Optional[Any] = None,
) -> SuiteShard:
    """Execute shard ``k`` of ``N`` of the suite's canonical task list.

    The partition is deterministic (:func:`shard_tasks`), so ``N`` hosts each
    running one shard -- sharing nothing but the manifest -- cover every task
    exactly once; :func:`merge_reports` over the saved shards then equals the
    unsharded :func:`run_suite` report (modulo wall-clock fields; compare via
    :func:`deterministic_report_dict`).  ``store``/``checkpoint``/``resume``
    behave as in :func:`run_suite`, except the checkpoint is *not* deleted
    here -- callers delete it after :meth:`SuiteShard.save` lands, so a crash
    between execution and save still resumes cheaply.
    """
    start = time.perf_counter()
    tasks = _flatten_tasks(suite)
    indices = shard_tasks(len(tasks), shard_index, shard_count)
    records, stats = _execute_tasks(
        suite,
        indices,
        jobs=jobs,
        cache_dir=cache_dir,
        prebuild=prebuild,
        store=store,
        checkpoint=checkpoint,
        resume=resume,
        shard_index=shard_index,
        shard_count=shard_count,
        on_progress=on_progress,
        should_stop=should_stop,
    )
    return SuiteShard(
        suite_fingerprint=suite.fingerprint(),
        shard_index=shard_index,
        shard_count=shard_count,
        task_count=len(tasks),
        records=records,
        elapsed_s=time.perf_counter() - start,
        stats=stats,
    )


def merge_reports(suite: SuiteSpec, shards: Sequence[SuiteShard]) -> SuiteReport:
    """Reassemble a complete shard set into one :class:`SuiteReport`.

    Validates that every shard carries the suite's fingerprint, agrees on the
    task count and shard count, and that together they cover every task index
    exactly once; any gap or overlap raises instead of producing a silently
    partial report.  Assembly runs through the same path as an unsharded
    :func:`run_suite`, so the merged report's deterministic content
    (:func:`deterministic_report_dict`) is identical to it.
    """
    if not shards:
        raise ValueError("merge_reports needs at least one shard")
    fingerprint = suite.fingerprint()
    task_count = len(_flatten_tasks(suite))
    shard_count = shards[0].shard_count
    seen_positions: set = set()
    records: Dict[int, Dict[str, Any]] = {}
    for shard in shards:
        if shard.suite_fingerprint != fingerprint:
            raise ValueError(
                f"shard {shard.shard_index}/{shard.shard_count} was produced from "
                f"suite {shard.suite_fingerprint}, not this suite ({fingerprint})"
            )
        if shard.shard_count != shard_count:
            raise ValueError(
                f"mixed shard counts: {shard.shard_count} vs {shard_count}"
            )
        if shard.task_count != task_count:
            raise ValueError(
                f"shard {shard.shard_index}/{shard.shard_count} covers "
                f"{shard.task_count} tasks but the suite flattens to {task_count}"
            )
        if shard.shard_index in seen_positions:
            raise ValueError(f"duplicate shard {shard.shard_index}/{shard.shard_count}")
        seen_positions.add(shard.shard_index)
        for index, record in shard.records.items():
            if index in records:
                raise ValueError(f"task {index} appears in more than one shard")
            records[index] = record
    missing = [index for index in range(task_count) if index not in records]
    if missing:
        raise ValueError(
            f"incomplete shard set: {len(shards)} of {shard_count} shard(s) "
            f"present, {len(missing)} task(s) missing (first: {missing[:5]})"
        )
    report = _assemble_report(suite, records)
    report.elapsed_s = sum(shard.elapsed_s for shard in shards)
    stats: Dict[str, int] = {"tasks": task_count, "resumed": 0, "hits": 0, "misses": 0}
    for shard in shards:
        for key in ("resumed", "hits", "misses"):
            stats[key] += int(shard.stats.get(key, 0))
    report.store_stats = stats
    return report


#: Keys whose values derive from wall-clock time (or cache accounting), hence
#: legitimately differ between two executions of identical work.
_NONDETERMINISTIC_KEYS = frozenset({"elapsed_s", "rounds_per_s", "store"})


def deterministic_report_dict(data: Any) -> Any:
    """A deep copy of a report dict with the wall-clock-derived keys removed.

    ``elapsed_s`` / ``rounds_per_s`` measure host timing and ``store``
    records cache accounting; everything else in a
    :meth:`SuiteReport.to_dict` is deterministic.  Two runs of the same suite
    -- serial vs pooled, sharded-and-merged vs unsharded, cold vs a *fresh*
    store -- must compare equal under this normalization; that equality is
    what the shard-equivalence tests and the CI smoke assert.
    """
    if isinstance(data, Mapping):
        return {
            key: deterministic_report_dict(value)
            for key, value in data.items()
            if key not in _NONDETERMINISTIC_KEYS
        }
    if isinstance(data, (list, tuple)):
        return [deterministic_report_dict(value) for value in data]
    return data
