"""Scenario suites: many specs, one report.

A :class:`SuiteSpec` is a JSON manifest of scenario entries that run as one
unit and reduce -- through the declarative metrics pipeline
(:mod:`repro.scenarios.metrics`) -- into one :class:`SuiteReport`.  It is the
layer the benchmark harnesses were hand-rolling: "run these N configurations,
pool their per-trial metric rows by experimental condition, print one table".

Like :class:`~repro.scenarios.spec.ScenarioSpec`, a suite round-trips
losslessly through JSON and carries a stable content fingerprint.  The
manifest *file* format additionally accepts load-time sugar that disappears
on resolution (see :meth:`SuiteSpec.from_dict`):

* ``"path"`` entries referencing scenario JSON files relative to the
  manifest;
* suite-level ``"defaults"`` (dotted-path overrides applied to every entry)
  and per-entry ``"overrides"``;
* suite-level ``"metrics"`` applied to entries whose scenarios declare none.

Execution (:func:`run_suite`) flattens every entry's trials into one task
list and fans it out over the
:class:`~repro.analysis.sweep.ParallelSweepRunner` -- per-spec *and*
per-trial parallelism in one pool, workers receiving serialized specs only --
with scheduler-delta tables prebuilt (and optionally disk-cached) under each
entry's fingerprint exactly as :func:`repro.scenarios.runtime.run_many` does.
Trial metric rows are byte-identical to serial :func:`repro.scenarios.runtime.run`
execution; entries sharing a ``group`` label pool their rows into group
aggregates, which is how a suite reproduces a benchmark's
several-specs-per-table-row arithmetic exactly.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.sweep import (
    SCHEDULER_DELTA_TABLE_KWARG,
    ParallelSweepRunner,
    format_table,
)
from repro.scenarios.metrics import aggregate_metric_rows, flatten_aggregates
from repro.scenarios.runtime import (
    RunResult,
    _aggregate,
    absorb_trial_record,
    prebuild_delta_table,
    trial_record,
)
from repro.scenarios.spec import (
    MetricSpec,
    ScenarioSpec,
    _json_canonical,
    _reject_unknown_keys,
)

#: Suite manifest schema version (independent of the scenario spec version).
SUITE_VERSION = 1


@dataclass(frozen=True)
class SuiteEntry:
    """One scenario inside a suite, with its pooling group label.

    Entries with the same ``group`` pool their per-trial metric rows in the
    report's group aggregates; ``group`` defaults to the entry ``id`` (one
    group per entry).
    """

    id: str
    scenario: ScenarioSpec
    group: str = ""

    def __post_init__(self) -> None:
        if not self.id or not isinstance(self.id, str):
            raise ValueError("suite entry needs a non-empty id string")
        if not isinstance(self.scenario, ScenarioSpec):
            raise TypeError("suite entry scenario must be a ScenarioSpec")

    @property
    def group_label(self) -> str:
        return self.group or self.id

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"id": self.id, "scenario": self.scenario.to_dict()}
        if self.group:
            data["group"] = self.group
        return data


@dataclass(frozen=True)
class SuiteSpec:
    """A serializable manifest of scenarios run (and reported) as one unit."""

    name: str
    entries: Tuple[SuiteEntry, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("suite needs a non-empty name string")
        object.__setattr__(self, "entries", tuple(self.entries))
        if not self.entries:
            raise ValueError("suite needs at least one entry")
        ids = [entry.id for entry in self.entries]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate suite entry ids: {sorted(ids)}")
        # Pooled group aggregates assume every member declares the same
        # metrics (ratio/rate definitions are taken once per group); a mixed
        # group would silently lose pooled columns, so reject it up front.
        metric_names_by_group: Dict[str, Tuple[str, ...]] = {}
        for entry in self.entries:
            names = tuple(metric.name for metric in entry.scenario.metrics)
            previous = metric_names_by_group.setdefault(entry.group_label, names)
            if previous != names:
                raise ValueError(
                    f"suite group {entry.group_label!r} mixes metric declarations "
                    f"({list(previous)} vs {list(names)} on entry {entry.id!r}); "
                    "entries pooled into one group must declare the same metrics"
                )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The fully-resolved canonical form (all scenarios inline)."""
        return {
            "version": SUITE_VERSION,
            "name": self.name,
            "description": self.description,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], base_dir: Optional[str] = None
    ) -> "SuiteSpec":
        """Parse a manifest, resolving the load-time sugar.

        Each entry carries either an inline ``"scenario"`` dict or a
        ``"path"`` to a scenario JSON file (resolved against ``base_dir``,
        which :meth:`load` sets to the manifest's directory; ``"path"``
        entries are rejected without one).  Suite-level ``"defaults"`` are
        dotted-path overrides applied to every entry, then per-entry
        ``"overrides"`` on top; suite-level ``"metrics"`` are attached to any
        entry whose scenario declares none.  The resulting suite is fully
        inline -- :meth:`to_dict` never re-emits the sugar.
        """
        _reject_unknown_keys(
            data,
            ("version", "name", "description", "defaults", "metrics", "entries"),
            "suite spec",
        )
        version = data.get("version", SUITE_VERSION)
        if version != SUITE_VERSION:
            raise ValueError(
                f"unsupported suite spec version {version!r} (expected {SUITE_VERSION})"
            )
        defaults = dict(data.get("defaults", {}))
        suite_metrics = tuple(
            MetricSpec.from_dict(entry) for entry in data.get("metrics", [])
        )
        raw_entries = data.get("entries")
        if not raw_entries:
            raise ValueError("suite spec needs a non-empty 'entries' list")
        entries: List[SuiteEntry] = []
        for index, raw in enumerate(raw_entries):
            where = f"suite entry #{index}"
            _reject_unknown_keys(
                raw, ("id", "group", "scenario", "path", "overrides"), where
            )
            if ("scenario" in raw) == ("path" in raw):
                raise ValueError(f"{where} needs exactly one of 'scenario' or 'path'")
            if "scenario" in raw:
                scenario = ScenarioSpec.from_dict(raw["scenario"])
            else:
                if base_dir is None:
                    raise ValueError(
                        f"{where} references a path but the manifest was parsed "
                        "without a base directory (use SuiteSpec.load)"
                    )
                scenario = ScenarioSpec.load(os.path.join(base_dir, raw["path"]))
            overrides = {**defaults, **dict(raw.get("overrides", {}))}
            if overrides:
                scenario = scenario.with_overrides(overrides)
            if suite_metrics and not scenario.metrics:
                scenario = scenario.with_metrics(*suite_metrics)
            entries.append(
                SuiteEntry(
                    id=raw.get("id", scenario.name),
                    scenario=scenario,
                    group=raw.get("group", ""),
                )
            )
        return cls(
            name=data.get("name", "suite"),
            description=data.get("description", ""),
            entries=tuple(entries),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str, base_dir: Optional[str] = None) -> "SuiteSpec":
        return cls.from_dict(json.loads(text), base_dir=base_dir)

    @classmethod
    def load(cls, path: str) -> "SuiteSpec":
        """Read a suite manifest (the ``python -m repro suite`` input)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read(), base_dir=os.path.dirname(path) or ".")

    def save(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
        return path

    def fingerprint(self) -> str:
        """SHA-256 content hash of the canonical (resolved) form, truncated.

        Entry scenarios are already fingerprint-stable
        (:meth:`~repro.scenarios.spec.ScenarioSpec.fingerprint`); the suite
        fingerprint extends the same identity over the manifest, so CI can
        pin "this checked-in manifest is exactly the programmatic suite".
        """
        import hashlib

        payload = _json_canonical(self.to_dict()).encode()
        return hashlib.sha256(payload).hexdigest()[:16]

    @property
    def groups(self) -> Tuple[str, ...]:
        """Group labels in first-appearance order."""
        seen: Dict[str, None] = {}
        for entry in self.entries:
            seen.setdefault(entry.group_label)
        return tuple(seen)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def run_suite_task(
    task: int = 0,
    suite_specs: Optional[Sequence[str]] = None,
    suite_tasks: Optional[Sequence[Tuple[int, int]]] = None,
) -> Dict[str, Any]:
    """Worker target for :func:`run_suite` (module-level, hence picklable).

    ``suite_specs`` holds every entry's serialized scenario and
    ``suite_tasks`` the flattened ``(entry_index, trial_index)`` list, both
    shipped through the sweep's ``common`` mapping; ``task`` indexes one
    trial.  Executes through :func:`repro.scenarios.runtime.trial_record`
    (hence :func:`repro.scenarios.runtime.run_trial`, the same code path as
    serial runs), so metric rows match byte for byte.
    """
    if suite_specs is None or suite_tasks is None:
        raise ValueError("run_suite_task needs suite_specs and suite_tasks")
    entry_index, trial_index = suite_tasks[task]
    spec = ScenarioSpec.from_json(suite_specs[entry_index])
    return {"entry_index": entry_index, "trial": trial_record(spec, trial_index)}


@dataclass
class SuiteEntryResult:
    """One suite entry's executed outcome (a :class:`RunResult` plus identity)."""

    entry: SuiteEntry
    result: RunResult

    @property
    def row(self) -> Dict[str, Any]:
        """A flat table record for this entry."""
        record = {
            "id": self.entry.id,
            "group": self.entry.group_label,
            "fingerprint": self.result.fingerprint,
        }
        record.update(self.result.metrics)
        return record


@dataclass
class SuiteReport:
    """The outcome of :func:`run_suite`: per-entry results + group aggregates.

    ``group_summaries`` maps each group label to the
    :func:`repro.scenarios.metrics.aggregate_metric_rows` statistics over the
    *pooled* per-trial metric rows of every entry in the group -- pooled
    ratios and rates (with Wilson intervals), not means of means.
    """

    suite: SuiteSpec
    fingerprint: str
    entries: List[SuiteEntryResult] = field(default_factory=list)
    group_summaries: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    elapsed_s: float = 0.0

    def __bool__(self) -> bool:
        return any(result.result for result in self.entries)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def entry_rows(self) -> List[Dict[str, Any]]:
        return [entry.row for entry in self.entries]

    def group_metrics(self, group: str) -> Dict[str, Any]:
        """The flat pooled-aggregate record of one group."""
        return flatten_aggregates(self.group_summaries.get(group, {}))

    def group_rows(self) -> List[Dict[str, Any]]:
        """One flat record per group: counts plus pooled metric aggregates."""
        rows = []
        for group in self.suite.groups:
            members = [e for e in self.entries if e.entry.group_label == group]
            record: Dict[str, Any] = {
                "group": group,
                "entries": len(members),
                "trials": sum(len(e.result.trials) for e in members),
                "rounds": sum(e.result.metrics.get("rounds", 0) for e in members),
            }
            record.update(self.group_metrics(group))
            rows.append(record)
        return rows

    # ------------------------------------------------------------------
    # renderers
    # ------------------------------------------------------------------
    def format_table(
        self, columns: Optional[Sequence[str]] = None, by: str = "group"
    ) -> str:
        """An aligned text table (``by="group"`` pooled or ``by="entry"``)."""
        rows = self.group_rows() if by == "group" else self.entry_rows()
        return format_table(
            rows, columns=columns, title=f"suite {self.suite.name} (by {by}):"
        )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable report (what ``python -m repro suite --json`` writes)."""
        return {
            "suite": self.suite.to_dict(),
            "fingerprint": self.fingerprint,
            "elapsed_s": self.elapsed_s,
            "entries": [
                {
                    "id": e.entry.id,
                    "group": e.entry.group_label,
                    "result": e.result.to_dict(),
                }
                for e in self.entries
            ],
            "groups": {
                group: {key: dict(entry) for key, entry in summaries.items()}
                for group, summaries in self.group_summaries.items()
            },
        }

    def to_markdown(self, by: str = "group") -> str:
        """The report as a GitHub-flavored markdown table."""
        rows = self.group_rows() if by == "group" else self.entry_rows()
        if not rows:
            return f"## Suite `{self.suite.name}`\n\n(no results)\n"
        columns = list(rows[0])

        def render(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.6g}"
            return str(value)

        lines = [
            f"## Suite `{self.suite.name}` (fingerprint `{self.fingerprint}`)",
            "",
        ]
        if self.suite.description:
            lines.extend([self.suite.description, ""])
        lines.append("| " + " | ".join(columns) + " |")
        lines.append("|" + "|".join(" --- " for _ in columns) + "|")
        for row in rows:
            lines.append(
                "| " + " | ".join(render(row.get(col, "")) for col in columns) + " |"
            )
        lines.append("")
        return "\n".join(lines)


def run_suite(
    suite: SuiteSpec,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    prebuild: bool = True,
) -> SuiteReport:
    """Execute every trial of every entry and aggregate into a :class:`SuiteReport`.

    Parameters mirror :func:`repro.scenarios.runtime.run_many`: ``jobs``
    above 1 runs the flattened (entry, trial) task list on a process pool
    (``None`` = all cores, <2 = serial); ``prebuild`` computes each cacheable
    entry's scheduler-delta table once in the parent -- keyed by the entry
    spec's fingerprint, optionally persisted under ``cache_dir`` -- and ships
    the merged table to workers through the pool initializer.

    Sparse workloads are auto-skipped by the prebuild pass: a ``single_shot``
    environment leaves most of its (typically t_ack-long) run idle, so the
    lazily computed per-round deltas touch only a fraction of the rounds a
    full-table prebuild would pay for upfront.  Such entries run with lazy
    deltas and a :class:`RuntimeWarning` notes the skip; pass
    ``prebuild=False`` to silence it when the whole suite is sparse.
    """
    start = time.perf_counter()
    tasks: List[Tuple[int, int]] = []
    for entry_index, entry in enumerate(suite.entries):
        for trial_index in range(entry.scenario.run.trials):
            tasks.append((entry_index, trial_index))

    common: Dict[str, Any] = {
        "suite_specs": [entry.scenario.to_json(indent=None) for entry in suite.entries],
        "suite_tasks": tasks,
    }
    if prebuild:
        sparse = [
            entry.id
            for entry in suite.entries
            if entry.scenario.environment.name == "single_shot"
        ]
        if sparse:
            shown = ", ".join(sparse[:3]) + (", ..." if len(sparse) > 3 else "")
            warnings.warn(
                f"run_suite(prebuild=True): skipping the scheduler-delta prebuild "
                f"for {len(sparse)} single-shot entr{'y' if len(sparse) == 1 else 'ies'} "
                f"({shown}) -- a single-shot workload leaves most of its run idle, so "
                "lazy per-round deltas beat a full-table prebuild; pass "
                "prebuild=False to silence this when the whole suite is sparse",
                RuntimeWarning,
                stacklevel=2,
            )
        merged: Dict[Tuple[Hashable, int], Tuple[int, ...]] = {}
        seen_fingerprints = set()
        for entry in suite.entries:
            if entry.scenario.environment.name == "single_shot":
                continue
            fingerprint = entry.scenario.fingerprint()
            if fingerprint in seen_fingerprints:
                continue
            seen_fingerprints.add(fingerprint)
            try:
                table = prebuild_delta_table(entry.scenario, cache_dir=cache_dir)
            except (KeyError, TypeError, ValueError):
                # A broken entry fails loudly when it actually runs; the
                # prebuild pass is best-effort, exactly as in run_many.
                continue
            if table:
                merged.update(table)
        if merged:
            common[SCHEDULER_DELTA_TABLE_KWARG] = merged

    runner = ParallelSweepRunner(jobs=jobs)
    rows = runner.run({"task": list(range(len(tasks)))}, run_suite_task, common=common)

    results = [
        RunResult(spec=entry.scenario, fingerprint=entry.scenario.fingerprint())
        for entry in suite.entries
    ]
    for record in rows:
        absorb_trial_record(results[record["entry_index"]], record["trial"])
    for result in results:
        _aggregate(result)

    report = SuiteReport(suite=suite, fingerprint=suite.fingerprint())
    report.entries = [
        SuiteEntryResult(entry=entry, result=result)
        for entry, result in zip(suite.entries, results)
    ]
    for group in suite.groups:
        members = [e for e in report.entries if e.entry.group_label == group]
        pooled_rows: List[Dict[str, Any]] = []
        for member in members:
            pooled_rows.extend(member.result.metric_rows)
        # Ratio/rate definitions come from the group's first entry -- safe
        # because SuiteSpec rejects groups whose members declare different
        # metrics at construction time.
        metric_specs = members[0].entry.scenario.metrics if members else ()
        report.group_summaries[group] = aggregate_metric_rows(metric_specs, pooled_rows)
    report.elapsed_s = time.perf_counter() - start
    return report
