"""Component registries for the declarative scenario layer.

A :class:`ScenarioSpec` names its parts -- topology, scheduler, algorithm,
environment -- by *registry name* plus a JSON-serializable argument mapping.
The registries defined here map those names to builder callables, in the
style of configuration-driven simulation stacks where adding a workload is a
data change, not a code change.

Four process-wide registries exist (one per component kind), populated by the
decorators :func:`register_topology`, :func:`register_scheduler`,
:func:`register_algorithm`, and :func:`register_environment`.  The built-in
components live in :mod:`repro.scenarios.components`; downstream code can
register additional ones under new names (duplicate names raise, so two
libraries can never silently shadow each other's builders).

Builder signatures by kind:

* **topology** -- ``builder(trial_seed, **args) -> (DualGraph, Embedding)``
* **scheduler** -- ``builder(graph, trial_seed, **args) -> LinkScheduler``
* **algorithm** -- ``builder(graph, rng, **args) -> AlgorithmBuild``
* **environment** -- ``builder(graph, **args) -> Environment``

``trial_seed`` is the per-trial seed resolved by the
:class:`~repro.scenarios.spec.RunPolicy`; builders use it as the default when
their args carry no explicit seed, which is what makes multi-trial runs vary
while fully-pinned specs stay byte-reproducible.

Algorithm builders may additionally implement the **params-only resolution
mode**: accepting a keyword-only ``params_only: bool = False`` and, when it is
true, returning an ``AlgorithmBuild`` whose derived parameters and round
lengths are resolved but whose process population is empty.  Support is
auto-detected from the signature (:meth:`Registry.supports_params_only`), so
downstream-registered algorithms opt in just by taking the keyword.

A fifth registry -- metrics -- lives in :mod:`repro.scenarios.metrics`
(:class:`~repro.scenarios.metrics.MetricRegistry` subclasses
:class:`Registry` with trace-mode and pooled-aggregate metadata).
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, List, Mapping, Optional


def _accepts_keyword(builder: Callable[..., Any], keyword: str) -> bool:
    """True iff the builder's signature declares the named parameter."""
    try:
        signature = inspect.signature(builder)
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False
    return keyword in signature.parameters


def _accepts_params_only(builder: Callable[..., Any]) -> bool:
    """True iff the builder's signature declares a ``params_only`` parameter."""
    return _accepts_keyword(builder, "params_only")


class Registry:
    """A name -> builder mapping with loud duplicate/unknown-name handling."""

    #: Recognized workload classifications (see :meth:`workload`).
    WORKLOADS = ("dense", "sparse")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._builders: Dict[str, Callable[..., Any]] = {}
        self._sample_args: Dict[str, Dict[str, Any]] = {}
        self._trial_seeded: Dict[str, bool] = {}
        self._params_only: Dict[str, bool] = {}
        self._embedding_aware: Dict[str, bool] = {}
        self._workload: Dict[str, str] = {}
        self._traffic_aware: Dict[str, bool] = {}
        self._trial_seed_aware: Dict[str, bool] = {}

    def register(
        self,
        name: str,
        sample_args: Optional[Mapping[str, Any]] = None,
        trial_seeded: bool = False,
        workload: str = "dense",
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator: register a builder under ``name``.

        ``sample_args`` is a minimal argument mapping that produces a small
        but valid component -- used by ``python -m repro list``, the docs, and
        the round-trip tests, so every registered component stays runnable.

        ``trial_seeded`` declares that the builder consumes the per-trial seed
        when its args carry no explicit ``seed`` -- i.e. the component
        re-randomizes across trials unless pinned.  The scenario runtime uses
        this (via :meth:`is_trial_seeded`) to decide when cross-trial caches
        such as prebuilt scheduler-delta tables can actually hit.

        ``workload`` classifies the runtime profile the component drives
        (meaningful for environments): ``"dense"`` components keep most of
        the run busy, ``"sparse"`` ones leave it mostly idle -- which is when
        upfront scheduler-delta prebuilds lose to lazy per-round computation,
        so ``run_suite(prebuild=True)`` auto-skips sparse entries (see
        :meth:`workload`).
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} registry names must be non-empty strings")
        if workload not in self.WORKLOADS:
            raise ValueError(
                f"workload must be one of {self.WORKLOADS}, got {workload!r}"
            )

        def decorator(builder: Callable[..., Any]) -> Callable[..., Any]:
            if name in self._builders:
                raise ValueError(
                    f"duplicate {self.kind} registration: {name!r} is already "
                    f"bound to {self._builders[name].__qualname__}"
                )
            self._builders[name] = builder
            self._sample_args[name] = dict(sample_args) if sample_args else {}
            self._trial_seeded[name] = bool(trial_seeded)
            self._params_only[name] = _accepts_params_only(builder)
            self._embedding_aware[name] = _accepts_keyword(builder, "embedding")
            self._workload[name] = workload
            self._traffic_aware[name] = _accepts_keyword(builder, "traffic")
            self._trial_seed_aware[name] = _accepts_keyword(builder, "trial_seed")
            return builder

        return decorator

    def get(self, name: str) -> Callable[..., Any]:
        """The builder registered under ``name`` (KeyError lists known names)."""
        try:
            return self._builders[name]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; registered {self.kind} names: "
                f"{', '.join(sorted(self._builders)) or '(none)'}"
            ) from None

    def sample_args(self, name: str) -> Dict[str, Any]:
        """A copy of the sample arguments recorded at registration."""
        self.get(name)  # raise uniformly on unknown names
        return dict(self._sample_args[name])

    def is_trial_seeded(self, name: str) -> bool:
        """Whether the builder re-randomizes per trial when no ``seed`` arg is pinned."""
        self.get(name)  # raise uniformly on unknown names
        return self._trial_seeded[name]

    def supports_params_only(self, name: str) -> bool:
        """Whether the builder implements the params-only resolution mode.

        Detected from the builder's signature at registration: a builder that
        accepts a ``params_only`` keyword promises that
        ``builder(..., params_only=True)`` returns its usual build object with
        the derived parameters and round-structure lengths resolved but **no
        process population constructed**.  The scenario runtime uses this
        (``repro.scenarios.runtime.resolve_params``) wherever it needs only
        derived quantities -- delta-table prebuilds, round budget resolution,
        trace-mode selection -- so those paths stop materializing throwaway
        processes.
        """
        self.get(name)  # raise uniformly on unknown names
        return self._params_only[name]

    def supports_embedding(self, name: str) -> bool:
        """Whether the builder accepts the trial topology's ``embedding``.

        Detected from the signature at registration (like
        :meth:`supports_params_only`): a builder declaring an ``embedding``
        keyword receives the topology builder's
        :class:`~repro.dualgraph.geometric.Embedding` from the scenario
        runtime, which is what lets environment sender selections place
        themselves geometrically (e.g. ``center_probe_neighbors``).
        """
        self.get(name)  # raise uniformly on unknown names
        return self._embedding_aware[name]

    def workload(self, name: str) -> str:
        """The component's declared runtime profile: ``"dense"`` or ``"sparse"``.

        Registration metadata, not a name heuristic: ``"sparse"`` marks
        environments whose submissions leave most of the run idle (the
        single-shot family), where lazy per-round scheduler deltas beat an
        upfront prebuild by ~8x (the ROADMAP's measured caveat).  The suite
        executor consults this to auto-skip prebuilds for sparse entries;
        queue-backed traffic environments classify ``"dense"`` and keep the
        prebuild.
        """
        self.get(name)  # raise uniformly on unknown names
        return self._workload[name]

    def supports_traffic(self, name: str) -> bool:
        """Whether the builder accepts the scenario's ``traffic`` spec.

        Detected from the signature at registration (like
        :meth:`supports_params_only`): a builder declaring a ``traffic``
        keyword receives the :class:`~repro.scenarios.spec.TrafficSpec` of
        the scenario being materialized -- how the ``queued`` environment
        and the traffic-aware schedulers read the declared workload.
        """
        self.get(name)  # raise uniformly on unknown names
        return self._traffic_aware[name]

    def supports_trial_seed(self, name: str) -> bool:
        """Whether an environment builder accepts the per-trial seed.

        Environment builders historically take ``f(graph, **args)``; one that
        declares a ``trial_seed`` keyword receives the trial's seed from the
        runtime, which lets seed-consuming environments (queued arrivals)
        re-randomize across trials unless their spec pins an explicit seed.
        """
        self.get(name)  # raise uniformly on unknown names
        return self._trial_seed_aware[name]

    def names(self) -> List[str]:
        return sorted(self._builders)

    def __contains__(self, name: object) -> bool:
        return name in self._builders

    def __len__(self) -> int:
        return len(self._builders)

    def __repr__(self) -> str:
        return f"Registry(kind={self.kind!r}, names={self.names()})"


#: The process-wide registries backing :class:`~repro.scenarios.spec.ScenarioSpec`.
TOPOLOGIES = Registry("topology")
SCHEDULERS = Registry("scheduler")
ALGORITHMS = Registry("algorithm")
ENVIRONMENTS = Registry("environment")


def register_topology(
    name: str,
    sample_args: Optional[Mapping[str, Any]] = None,
    trial_seeded: bool = False,
):
    """Register a topology builder: ``f(trial_seed, **args) -> (graph, embedding)``."""
    return TOPOLOGIES.register(name, sample_args=sample_args, trial_seeded=trial_seeded)


def register_scheduler(
    name: str,
    sample_args: Optional[Mapping[str, Any]] = None,
    trial_seeded: bool = False,
):
    """Register a scheduler builder: ``f(graph, trial_seed, **args) -> LinkScheduler``."""
    return SCHEDULERS.register(name, sample_args=sample_args, trial_seeded=trial_seeded)


def register_algorithm(name: str, sample_args: Optional[Mapping[str, Any]] = None):
    """Register an algorithm builder: ``f(graph, rng, **args) -> AlgorithmBuild``."""
    return ALGORITHMS.register(name, sample_args=sample_args)


def register_environment(
    name: str,
    sample_args: Optional[Mapping[str, Any]] = None,
    trial_seeded: bool = False,
    workload: str = "dense",
):
    """Register an environment builder: ``f(graph, **args) -> Environment``.

    ``workload`` classifies the submission profile (``"dense"`` / ``"sparse"``,
    see :meth:`Registry.workload`); builders may additionally declare
    ``traffic`` and ``trial_seed`` keywords to receive the scenario's
    :class:`~repro.scenarios.spec.TrafficSpec` and the per-trial seed.
    """
    return ENVIRONMENTS.register(
        name, sample_args=sample_args, trial_seeded=trial_seeded, workload=workload
    )
