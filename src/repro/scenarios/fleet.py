"""Fleet suite execution: multi-process work-stealing over leased task chunks.

:func:`run_suite_fleet` replaces the static ``--shard k/N`` partition (where
every worker owns a fixed round-robin slice and the run finishes at the pace
of the unluckiest worker) with *dynamic leasing*: the coordinator chunks the
suite's canonical ``(entry, trial)`` task list, writes a board file, and
spawns N independent OS processes that race to claim chunks one at a time.
A fast worker that drains its chunk simply claims another; a straggling chunk
never blocks more than the one worker holding it.

Leases are plain files under ``<store>/suite/<fingerprint>/leases/``, written
with the same POSIX ``flock`` + fsync idiom as the
:class:`~repro.scenarios.store.ResultStore` buckets:

* **claim** is an atomic ``os.link`` of a fully-written temp file onto the
  lease path -- either the link lands (the chunk is yours, content and all)
  or ``FileExistsError`` says someone else got there first;
* **progress** (per-task done marks + a heartbeat timestamp) rewrites the
  lease in place under an exclusive lock, after re-reading it to verify the
  worker still owns it;
* **stealing** takes the exclusive lock, re-reads, and re-owns the lease only
  if its heartbeat is older than the TTL -- so a worker that dies (crash,
  SIGKILL, OOM) has its chunk reclaimed by survivors, while a live worker's
  lease is never touched.

Correctness never depends on the TTL: executed records land in the
content-addressed result store *before* the lease is updated, workers consult
the store before executing a task, and a duplicated execution (a steal racing
a slow-but-alive owner) writes byte-identical records resolved
last-write-wins.  The store is therefore both the result channel and the
resume checkpoint -- re-running a killed fleet skips everything that finished.

The merged :class:`~repro.scenarios.suite.SuiteReport` assembles through the
same :func:`~repro.scenarios.suite._assemble_report` path as serial runs and
shard merges, so its deterministic content
(:func:`~repro.scenarios.suite.deterministic_report_dict`) is byte-identical
to ``run_suite``'s no matter which worker executed which task, how many died,
or how work was stolen.

``task_runner`` is an injectable seam (a module-level callable executed *in
the worker processes*; the default runs
:func:`repro.scenarios.runtime.trial_record`).  The throughput benchmark uses
it to model skewed per-task latency identically under serial and fleet
execution, and the fault-injection tests use it to hold a worker inside a
task long enough to SIGKILL it deterministically.  Workers are forked, so the
callable needs no pickling -- but it must be installed before
:func:`run_suite_fleet` is called.
"""

from __future__ import annotations

import json
import math
import os
import shutil
import sys
import tempfile
import time
import traceback
import warnings
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.scenarios.runtime import trial_record
from repro.scenarios.spec import ScenarioSpec, _json_canonical
from repro.scenarios.store import (
    ResultStore,
    _flock,
    _locked_bucket_reader,
    _same_inode,
)
from repro.scenarios.suite import (
    SuiteCancelled,
    SuiteSpec,
    _assemble_report,
    _flatten_tasks,
    SuiteReport,
)

#: Version tag written into every board and lease file, so a future layout
#: change fails loudly instead of silently mixing protocols.
FLEET_PROTOCOL_VERSION = 1

#: Default seconds without a heartbeat before a lease counts as abandoned.
#: Purely an efficiency knob (how fast survivors reclaim a dead worker's
#: chunk): a too-short TTL at worst duplicates work, never corrupts it,
#: because records are content-addressed and byte-identical.
DEFAULT_LEASE_TTL_S = 5.0


def default_task_runner(spec: ScenarioSpec, trial_index: int) -> Dict[str, Any]:
    """The production task runner: one trial through the standard pipeline.

    Module-level so fleet workers (forked) and benchmark wrappers can both
    reference it; identical to what ``run_suite``'s pool workers execute, so
    fleet records match serial records byte for byte.
    """
    return trial_record(spec, trial_index)


# ----------------------------------------------------------------------
# lease files
# ----------------------------------------------------------------------
def fleet_run_dir(store_root: str, fingerprint: str) -> str:
    """The per-suite fleet directory: ``<store>/suite/<fingerprint>``."""
    return os.path.join(store_root, "suite", fingerprint)


def _board_path(leases_dir: str) -> str:
    return os.path.join(leases_dir, "board.json")


def _lease_path(leases_dir: str, chunk_index: int) -> str:
    return os.path.join(leases_dir, f"chunk-{chunk_index:05d}.json")


def _write_fsynced(path: str, payload: Dict[str, Any]) -> None:
    """Write a whole JSON file durably (write + flush + fsync)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(_json_canonical(payload) + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def _read_json(path: str) -> Optional[Dict[str, Any]]:
    """Parse a JSON file under a shared lock; ``None`` if missing/torn.

    Live writers rewrite leases under the exclusive lock, so a shared-locked
    read never sees their half-written state; a file torn by a kill
    mid-rewrite parses as ``None`` and is handled by the caller's
    mtime-based expiry.
    """
    with _locked_bucket_reader(path) as handle:
        if handle is None:
            return None
        try:
            data = json.load(handle)
        except ValueError:
            return None
    return data if isinstance(data, dict) else None


def _lease_expired(lease: Optional[Dict[str, Any]], path: str, ttl_s: float) -> bool:
    """Whether a lease counts as abandoned (heartbeat or mtime older than TTL)."""
    now = time.time()
    if lease is None:
        # Torn by a kill mid-rewrite: fall back to the file's mtime as the
        # last sign of life.
        try:
            return now - os.stat(path).st_mtime > ttl_s
        except FileNotFoundError:
            return False
    try:
        heartbeat = float(lease.get("heartbeat", 0.0))
    except (TypeError, ValueError):
        heartbeat = 0.0
    return now - heartbeat > ttl_s


def _try_create_lease(
    leases_dir: str, chunk_index: int, task_ids: Sequence[int], owner: str
) -> bool:
    """Atomically claim an unclaimed chunk: link a fully-written temp file.

    ``os.link`` either materializes the lease -- content, heartbeat and all,
    never observable half-written -- or raises ``FileExistsError`` because a
    rival linked first.  (O_CREAT|O_EXCL would claim an *empty* file and open
    a window where readers see a claimed-but-contentless lease.)
    """
    path = _lease_path(leases_dir, chunk_index)
    if os.path.exists(path):
        return False
    payload = {
        "lease": FLEET_PROTOCOL_VERSION,
        "chunk": chunk_index,
        "tasks": list(task_ids),
        "owner": owner,
        "heartbeat": time.time(),
        "done": [],
        "state": "leased",
        "steals": 0,
    }
    fd, tmp = tempfile.mkstemp(prefix=f"claim-{chunk_index}-", dir=leases_dir)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(_json_canonical(payload) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        try:
            os.link(tmp, path)
            return True
        except FileExistsError:
            return False
    finally:
        os.unlink(tmp)


def _update_lease(
    leases_dir: str,
    chunk_index: int,
    owner: str,
    mutate: Callable[[Dict[str, Any]], Optional[Dict[str, Any]]],
) -> Optional[Dict[str, Any]]:
    """Rewrite a lease in place under the exclusive lock, if still owned.

    Re-reads the lease with the lock held and hands it to ``mutate``; a
    ``None`` return (wrong owner, already done, torn file) aborts without
    writing.  Returns the written lease, or ``None`` on abort.  The rewrite
    is flushed and fsynced before the lock drops, so the next locked reader
    sees either the old complete state or the new complete state.
    """
    path = _lease_path(leases_dir, chunk_index)
    while True:
        try:
            handle = open(path, "r+", encoding="utf-8")
        except FileNotFoundError:
            return None
        _flock(handle, exclusive=True)
        if not _same_inode(handle, path):
            handle.close()
            continue
        break
    with handle:
        try:
            lease = json.load(handle)
        except ValueError:
            lease = None
        if not isinstance(lease, dict):
            lease = None
        if lease is not None and lease.get("owner") != owner:
            return None
        updated = mutate(lease if lease is not None else {})
        if updated is None:
            return None
        handle.seek(0)
        handle.truncate()
        handle.write(_json_canonical(updated) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    return updated


def _try_steal_lease(
    leases_dir: str, chunk_index: int, ttl_s: float, new_owner: str
) -> Optional[Dict[str, Any]]:
    """Re-own an abandoned lease; ``None`` if it is done, live, or contested.

    Takes the exclusive lock, re-reads, and re-checks expiry *under the
    lock*, so two stealers serialize and only one wins; a heartbeat that
    landed while we waited for the lock vetoes the steal.
    """
    path = _lease_path(leases_dir, chunk_index)
    while True:
        try:
            handle = open(path, "r+", encoding="utf-8")
        except FileNotFoundError:
            return None
        _flock(handle, exclusive=True)
        if not _same_inode(handle, path):
            handle.close()
            continue
        break
    with handle:
        try:
            lease = json.load(handle)
        except ValueError:
            lease = None
        if not isinstance(lease, dict):
            lease = None
        if lease is not None and lease.get("state") == "done":
            return None
        if not _lease_expired(lease, path, ttl_s):
            return None
        if lease is None:
            # Torn beyond repair: the board still knows the chunk's tasks.
            board = _read_json(_board_path(leases_dir)) or {}
            chunks = board.get("chunks", [])
            tasks = chunks[chunk_index] if chunk_index < len(chunks) else []
            lease = {"tasks": tasks, "done": [], "steals": 0}
        stolen = {
            "lease": FLEET_PROTOCOL_VERSION,
            "chunk": chunk_index,
            "tasks": list(lease.get("tasks", [])),
            "owner": new_owner,
            "heartbeat": time.time(),
            "done": list(lease.get("done", [])),
            "state": "leased",
            "steals": int(lease.get("steals", 0)) + 1,
        }
        handle.seek(0)
        handle.truncate()
        handle.write(_json_canonical(stolen) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    return stolen


# ----------------------------------------------------------------------
# the worker process
# ----------------------------------------------------------------------
def _claim_any_chunk(
    leases_dir: str,
    chunk_count: int,
    board_chunks: Sequence[Sequence[int]],
    owner: str,
    ttl_s: float,
    scan_offset: int,
) -> Optional[Tuple[int, List[int], Set[int]]]:
    """Claim one chunk: unclaimed first, then abandoned (expired) leases.

    ``scan_offset`` rotates each worker's scan order so N workers starting
    simultaneously spread over N different chunks instead of all racing for
    chunk 0.  Returns ``(chunk_index, task_ids, already_done)`` or ``None``
    when nothing is currently claimable.
    """
    order = [(scan_offset + i) % chunk_count for i in range(chunk_count)]
    for chunk_index in order:
        if _try_create_lease(
            leases_dir, chunk_index, board_chunks[chunk_index], owner
        ):
            return chunk_index, list(board_chunks[chunk_index]), set()
    for chunk_index in order:
        path = _lease_path(leases_dir, chunk_index)
        lease = _read_json(path)
        if lease is not None and lease.get("state") == "done":
            continue
        if lease is not None and lease.get("owner") == owner:
            continue
        if not _lease_expired(lease, path, ttl_s):
            continue
        stolen = _try_steal_lease(leases_dir, chunk_index, ttl_s, owner)
        if stolen is not None:
            done = {int(task) for task in stolen.get("done", [])}
            return chunk_index, [int(t) for t in stolen.get("tasks", [])], done
    return None


def _all_chunks_done(leases_dir: str, chunk_count: int) -> bool:
    for chunk_index in range(chunk_count):
        lease = _read_json(_lease_path(leases_dir, chunk_index))
        if lease is None or lease.get("state") != "done":
            return False
    return True


def _fleet_worker_main(
    worker_id: int,
    suite_json: str,
    store_root: str,
    leases_dir: str,
    lease_ttl_s: float,
    poll_s: float,
    fsync: bool,
    task_runner: Callable[[ScenarioSpec, int], Dict[str, Any]],
) -> int:
    """One fleet worker: claim chunks, execute their tasks, mark them done.

    Runs in a forked child.  Exits 0 once every chunk on the board is done
    (whether this worker did the work or just observed it); any exception
    prints a traceback and exits 1 -- the coordinator surfaces nonzero exits
    only if tasks were actually left unfinished, so one crashed worker whose
    chunks the survivors reclaim does not fail the run.
    """
    suite = SuiteSpec.from_json(suite_json)
    # A fresh (non-shared) instance: the fork inherited the parent's LRU
    # front, which is fine (buckets revalidate on size+mtime), but hit/miss
    # counters should be this worker's own.
    store = ResultStore(store_root, fsync=fsync)
    tasks = _flatten_tasks(suite)
    specs = [entry.scenario for entry in suite.entries]
    board = _read_json(_board_path(leases_dir))
    if board is None:
        raise RuntimeError(f"fleet worker {worker_id}: missing board file in {leases_dir}")
    board_chunks: List[List[int]] = [
        [int(task) for task in chunk] for chunk in board["chunks"]
    ]
    chunk_count = len(board_chunks)
    owner = f"w{worker_id}-pid{os.getpid()}"

    while True:
        claim = _claim_any_chunk(
            leases_dir, chunk_count, board_chunks, owner, lease_ttl_s, worker_id
        )
        if claim is None:
            if _all_chunks_done(leases_dir, chunk_count):
                return 0
            # Other workers hold live leases on everything left: wait for
            # them to finish (or for one to die and its lease to expire).
            time.sleep(poll_s)
            continue
        chunk_index, task_ids, already_done = claim
        lost_lease = False
        for task_id in task_ids:
            if task_id in already_done:
                continue
            entry_index, trial_index = tasks[task_id]
            spec = specs[entry_index]
            # Store first: a previous owner may have executed this task and
            # died between the store write and the lease update.
            record = store.get(spec, trial_index)
            if record is None:
                record = task_runner(spec, trial_index)
                store.put(spec, trial_index, record)

            def mark_done(lease: Dict[str, Any]) -> Optional[Dict[str, Any]]:
                done = {int(task) for task in lease.get("done", [])}
                done.add(task_id)
                lease["done"] = sorted(done)
                lease["heartbeat"] = time.time()
                return lease

            if _update_lease(leases_dir, chunk_index, owner, mark_done) is None:
                # Stolen out from under us (we were presumed dead, e.g. one
                # task outlived the TTL).  The record is in the store, so the
                # thief skips straight past it; abandon the chunk's remainder.
                lost_lease = True
                break
        if not lost_lease:

            def mark_chunk_done(lease: Dict[str, Any]) -> Optional[Dict[str, Any]]:
                lease["state"] = "done"
                lease["heartbeat"] = time.time()
                return lease

            _update_lease(leases_dir, chunk_index, owner, mark_chunk_done)


def _worker_entry(*args: Any) -> None:
    """Process target wrapping :func:`_fleet_worker_main` with exit-code plumbing."""
    try:
        sys.exit(_fleet_worker_main(*args))
    except SystemExit:
        raise
    except BaseException:
        traceback.print_exc()
        sys.exit(1)


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------
def _chunk_tasks(pending: Sequence[int], workers: int, chunk_size: Optional[int]) -> List[List[int]]:
    """Split pending task indices into lease-sized chunks (canonical order).

    The default targets ~4 chunks per worker: small enough that stealing
    rebalances a straggler, large enough that lease-file traffic stays
    negligible next to trial execution.
    """
    if chunk_size is None:
        chunk_size = max(1, math.ceil(len(pending) / max(1, workers * 4)))
    chunk_size = max(1, int(chunk_size))
    return [list(pending[i : i + chunk_size]) for i in range(0, len(pending), chunk_size)]


def _progress_snapshot(
    leases_dir: str, chunk_count: int
) -> Tuple[Set[int], int]:
    """The set of task indices marked done across all leases, plus steal count."""
    done: Set[int] = set()
    steals = 0
    for chunk_index in range(chunk_count):
        lease = _read_json(_lease_path(leases_dir, chunk_index))
        if lease is None:
            continue
        steals += int(lease.get("steals", 0) or 0)
        for task in lease.get("done", []):
            done.add(int(task))
        if lease.get("state") == "done":
            for task in lease.get("tasks", []):
                done.add(int(task))
    return done, steals


def run_suite_fleet(
    suite: SuiteSpec,
    workers: int = 4,
    store: Any = None,
    chunk_size: Optional[int] = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    poll_s: float = 0.05,
    cache_dir: Optional[str] = None,
    prebuild: bool = True,
    on_progress: Optional[Any] = None,
    should_stop: Optional[Any] = None,
    task_runner: Optional[Callable[[ScenarioSpec, int], Dict[str, Any]]] = None,
) -> SuiteReport:
    """Execute a suite across ``workers`` OS processes with work stealing.

    The coordinator consults the result store (``store`` may be a
    :class:`~repro.scenarios.store.ResultStore`, a root path, or ``None`` for
    a private temporary store), chunks the still-pending tasks, writes the
    lease board under ``<store>/suite/<fingerprint>/leases/``, forks the
    workers, and polls lease files for progress while they drain the board.
    Every executed record lands in the store, which doubles as the crash-safe
    checkpoint: rerunning after any failure skips all finished work.

    The report is assembled exactly like ``run_suite``'s -- compare with
    :func:`~repro.scenarios.suite.deterministic_report_dict` and they are
    byte-identical.  ``on_progress`` receives the same ``"plan"`` and
    ``"task"`` event shapes as ``run_suite`` (task events are emitted as the
    coordinator *observes* completions, so their order reflects completion,
    not the canonical order).  ``should_stop`` cancels between observations:
    workers get SIGTERM, completed records stay durable, and
    :class:`~repro.scenarios.suite.SuiteCancelled` is raised.

    ``prebuild`` computes scheduler-delta tables in the coordinator and
    preloads the process-wide cache *before* forking, so every worker
    inherits the tables by memory inheritance rather than re-deriving them.

    ``task_runner`` overrides per-task execution in the workers (see the
    module docstring); the default is :func:`default_task_runner`.  Requires
    a ``fork``-capable platform (POSIX).
    """
    import multiprocessing

    if workers < 1:
        raise ValueError(f"run_suite_fleet needs workers >= 1, got {workers}")
    start = time.perf_counter()
    runner = task_runner if task_runner is not None else default_task_runner

    owned_tmp: Optional[tempfile.TemporaryDirectory] = None
    resolved_store = ResultStore.coerce(store)
    if resolved_store is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="repro-fleet-")
        resolved_store = ResultStore(owned_tmp.name)
    try:
        return _run_fleet(
            suite,
            workers,
            resolved_store,
            chunk_size,
            lease_ttl_s,
            poll_s,
            cache_dir,
            prebuild,
            on_progress,
            should_stop,
            runner,
            multiprocessing.get_context("fork"),
            start,
        )
    finally:
        if owned_tmp is not None:
            owned_tmp.cleanup()


def _run_fleet(
    suite: SuiteSpec,
    workers: int,
    store: ResultStore,
    chunk_size: Optional[int],
    lease_ttl_s: float,
    poll_s: float,
    cache_dir: Optional[str],
    prebuild: bool,
    on_progress: Optional[Any],
    should_stop: Optional[Any],
    task_runner: Callable[[ScenarioSpec, int], Dict[str, Any]],
    ctx: Any,
    start: float,
) -> SuiteReport:
    tasks = _flatten_tasks(suite)
    specs = [entry.scenario for entry in suite.entries]
    fingerprint = suite.fingerprint()
    total = len(tasks)

    # Store prescan: warm records need no lease at all.
    records: Dict[int, Dict[str, Any]] = {}
    for index, (entry_index, trial_index) in enumerate(tasks):
        hit = store.get(specs[entry_index], trial_index)
        if hit is not None:
            records[index] = hit
    pending = [index for index in range(total) if index not in records]
    stats = {
        "tasks": total,
        "resumed": 0,
        "hits": len(records),
        "misses": len(pending),
    }
    if on_progress is not None:
        on_progress(
            {
                "event": "plan",
                "tasks": total,
                "resumed": 0,
                "hits": stats["hits"],
                "misses": stats["misses"],
            }
        )
    if should_stop is not None and should_stop():
        raise SuiteCancelled(
            f"cancelled before execution ({len(records)}/{total} tasks done)"
        )

    steals = 0
    worker_exits: Dict[int, Optional[int]] = {}
    if pending:
        if prebuild:
            # Same prebuild pass as run_suite, but installed into *this*
            # process's scheduler-delta cache pre-fork: the workers inherit
            # it through fork instead of each re-deriving the tables.
            _preload_coordinator_deltas(suite, specs, pending, tasks, cache_dir)

        run_dir = fleet_run_dir(store.root, fingerprint)
        leases_dir = os.path.join(run_dir, "leases")
        # The coordinator owns the lease namespace for this run: stale leases
        # from a previous (crashed) fleet describe chunkings of work that is
        # already reflected in the store, so they are swept, not trusted.
        shutil.rmtree(leases_dir, ignore_errors=True)
        os.makedirs(leases_dir, exist_ok=True)
        chunks = _chunk_tasks(pending, workers, chunk_size)
        _write_fsynced(
            _board_path(leases_dir),
            {
                "board": FLEET_PROTOCOL_VERSION,
                "suite": fingerprint,
                "tasks": total,
                "chunks": chunks,
            },
        )

        suite_json = suite.to_json(indent=None)
        processes = []
        for worker_id in range(min(workers, len(chunks))):
            process = ctx.Process(
                target=_worker_entry,
                args=(
                    worker_id,
                    suite_json,
                    store.root,
                    leases_dir,
                    lease_ttl_s,
                    poll_s,
                    store.fsync,
                    task_runner,
                ),
            )
            process.start()
            processes.append(process)

        observed: Set[int] = set()
        cancelled = False
        aborted = False
        try:
            while True:
                done, steals = _progress_snapshot(leases_dir, len(chunks))
                fresh = sorted(done - observed)
                for task_id in fresh:
                    observed.add(task_id)
                    if on_progress is not None:
                        entry_index, trial_index = tasks[task_id]
                        on_progress(
                            {
                                "event": "task",
                                "task": task_id,
                                "entry": entry_index,
                                "trial": trial_index,
                                "done": len(records) + len(observed),
                                "total": total,
                            }
                        )
                if should_stop is not None and should_stop():
                    cancelled = True
                    break
                if not any(process.is_alive() for process in processes):
                    break
                time.sleep(poll_s)
        except BaseException:
            # An on_progress callback (or anything else in the poll loop)
            # blew up: don't leave orphaned workers grinding on.
            aborted = True
            raise
        finally:
            for worker_id, process in enumerate(processes):
                if (cancelled or aborted) and process.is_alive():
                    process.terminate()
                process.join()
                worker_exits[worker_id] = process.exitcode
        if cancelled:
            raise SuiteCancelled(
                f"cancelled after {len(records) + len(observed)}/{total} tasks "
                "(completed records are in the result store)"
            )

        # Collect what the workers produced.  The LRU front revalidates
        # buckets by size+mtime, so the coordinator sees their appends.
        missing: List[int] = []
        for index in pending:
            entry_index, trial_index = tasks[index]
            record = store.get(specs[entry_index], trial_index)
            if record is None:
                missing.append(index)
            else:
                records[index] = record
        if missing:
            exits = {wid: code for wid, code in sorted(worker_exits.items())}
            raise RuntimeError(
                f"fleet run incomplete: {len(missing)} of {total} task(s) missing "
                f"from the store (first: {missing[:5]}); worker exit codes {exits}. "
                "Completed records are durable -- rerunning resumes from them."
            )
        shutil.rmtree(leases_dir, ignore_errors=True)

    report = _assemble_report(suite, records)
    report.store_stats = stats
    report.store_stats["workers"] = workers
    report.store_stats["steals"] = steals
    report.elapsed_s = time.perf_counter() - start
    return report


def _preload_coordinator_deltas(
    suite: SuiteSpec,
    specs: Sequence[ScenarioSpec],
    pending: Sequence[int],
    tasks: Sequence[Tuple[int, int]],
    cache_dir: Optional[str],
) -> None:
    """Prebuild scheduler-delta tables for pending entries and preload them.

    Mirrors ``run_suite``'s prebuild pass (same sparse-workload skip, same
    best-effort error handling) but installs the merged table into this
    process's delta cache, which forked workers inherit.
    """
    from repro.dualgraph.adversary import preload_process_delta_cache
    from repro.scenarios.registry import ENVIRONMENTS
    from repro.scenarios.runtime import prebuild_delta_table

    pending_entries = {tasks[index][0] for index in pending}
    merged: Dict[Any, Any] = {}
    seen_fingerprints: Set[str] = set()
    sparse: List[str] = []
    for entry_index in sorted(pending_entries):
        spec = specs[entry_index]
        if ENVIRONMENTS.workload(spec.environment.name) == "sparse":
            sparse.append(suite.entries[entry_index].id)
            continue
        entry_fingerprint = spec.fingerprint()
        if entry_fingerprint in seen_fingerprints:
            continue
        seen_fingerprints.add(entry_fingerprint)
        try:
            table = prebuild_delta_table(spec, cache_dir=cache_dir)
        except (KeyError, TypeError, ValueError):
            continue
        if table:
            merged.update(table)
    if sparse:
        shown = ", ".join(sparse[:3]) + (", ..." if len(sparse) > 3 else "")
        warnings.warn(
            f"run_suite_fleet(prebuild=True): skipping the scheduler-delta "
            f"prebuild for {len(sparse)} sparse-workload "
            f"entr{'y' if len(sparse) == 1 else 'ies'} ({shown}); pass "
            "prebuild=False to silence this when the whole suite is sparse",
            RuntimeWarning,
            stacklevel=3,
        )
    if merged:
        preload_process_delta_cache(merged)
